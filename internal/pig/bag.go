package pig

import (
	"fmt"
	"sort"

	"spongefiles/internal/media"
	"spongefiles/internal/simtime"
	"spongefiles/internal/spill"
)

// MemoryManager mirrors Pig's SpillableMemoryManager: bags register with
// it, report their estimated sizes, and when bag memory exceeds the
// task's budget it spills the largest bags first (the paper: applications
// "try to spill the bigger objects to free more memory") until usage is
// back under the threshold.
type MemoryManager struct {
	p      *simtime.Proc
	target spill.Target
	// BudgetReal is the real-byte budget for bag memory.
	BudgetReal int
	// ChunkReal is Pig's bag spill chunk size C (10 MB virtual by
	// default): each spill event writes whole chunks of this size,
	// each into its own spill file ("each spilled object is written
	// into a separate SpongeFile", §3.2).
	ChunkReal int

	used   int
	bags   []*Bag
	spills int
}

// NewMemoryManager creates a manager spilling through target.
func NewMemoryManager(p *simtime.Proc, target spill.Target, budgetReal, chunkReal int) *MemoryManager {
	if chunkReal <= 0 {
		chunkReal = 64 << 10
	}
	return &MemoryManager{p: p, target: target, BudgetReal: budgetReal, ChunkReal: chunkReal}
}

// Used reports current in-memory bag bytes (real).
func (m *MemoryManager) Used() int { return m.used }

// Spills reports how many spill events the manager has triggered.
func (m *MemoryManager) Spills() int { return m.spills }

func (m *MemoryManager) grow(n int) {
	m.used += n
	if m.used <= m.BudgetReal {
		return
	}
	// Memory pressure upcall: spill the largest bags until under budget.
	for m.used > m.BudgetReal {
		var victim *Bag
		for _, b := range m.bags {
			if b.memBytes > 0 && (victim == nil || b.memBytes > victim.memBytes) {
				victim = b
			}
		}
		if victim == nil || victim.memBytes < m.ChunkReal/4 {
			// Nothing big enough left to spill profitably.
			return
		}
		m.spills++
		victim.spillNow(m.p)
	}
}

func (m *MemoryManager) shrink(n int) { m.used -= n }

// Bag is Pig's primary intermediate structure: a collection of tuples
// supporting insertion and iteration, spilling itself when the memory
// manager detects pressure (§2.1.3). A bag created with a sort key is an
// ordered bag: iteration is globally sorted by the key (spilled runs are
// sorted before writing, and iteration merges them).
type Bag struct {
	mm   *MemoryManager
	name string
	// sortKey orders tuples when non-nil (ordered bag).
	sortKey func(Tuple) Value

	// In-memory portion: serialized tuples (and their keys, if sorted).
	tuples   [][]byte
	keys     []Value
	memBytes int

	// Spilled runs, in spill order.
	runs  []spill.File
	runSz int
	total int64
}

// NewBag creates an unordered bag registered with the manager.
func (m *MemoryManager) NewBag(name string) *Bag {
	b := &Bag{mm: m, name: name}
	m.bags = append(m.bags, b)
	return b
}

// NewSortedBag creates an ordered bag whose iteration is sorted by key.
func (m *MemoryManager) NewSortedBag(name string, key func(Tuple) Value) *Bag {
	b := &Bag{mm: m, name: name, sortKey: key}
	m.bags = append(m.bags, b)
	return b
}

// Len returns the number of tuples added.
func (b *Bag) Len() int64 { return b.total }

// MemBytes returns the in-memory portion's real size.
func (b *Bag) MemBytes() int { return b.memBytes }

// SpilledRuns returns how many spill files the bag has written.
func (b *Bag) SpilledRuns() int { return len(b.runs) }

// AddSerialized inserts an already-serialized tuple (the reduce path
// hands bags serialized values directly).
func (b *Bag) AddSerialized(data []byte) {
	cp := append([]byte(nil), data...)
	b.tuples = append(b.tuples, cp)
	if b.sortKey != nil {
		b.keys = append(b.keys, b.sortKey(DecodeTuple(cp)))
	}
	b.memBytes += len(cp)
	b.total++
	b.mm.grow(len(cp))
}

// Add inserts a tuple.
func (b *Bag) Add(t Tuple) { b.AddSerialized(AppendTuple(nil, t)) }

// spillNow writes the in-memory portion out in ChunkReal-sized pieces,
// each piece its own spill file, and frees the memory. Ordered bags sort
// the portion first so every run is a sorted run.
func (b *Bag) spillNow(p *simtime.Proc) {
	if len(b.tuples) == 0 {
		return
	}
	if b.sortKey != nil {
		idx := make([]int, len(b.tuples))
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(i, j int) bool {
			return Compare(b.keys[idx[i]], b.keys[idx[j]]) < 0
		})
		tuples := make([][]byte, len(idx))
		keys := make([]Value, len(idx))
		for i, j := range idx {
			tuples[i], keys[i] = b.tuples[j], b.keys[j]
		}
		b.tuples, b.keys = tuples, keys
	}
	var f spill.File
	chunk := 0
	for _, t := range b.tuples {
		if f == nil {
			f = b.mm.target.Create(p, fmt.Sprintf("%s-run%d", b.name, len(b.runs)))
			b.runs = append(b.runs, f)
			chunk = 0
		}
		var hdr [4]byte
		putLen(hdr[:], len(t))
		if err := f.Write(p, hdr[:]); err != nil {
			panic(err)
		}
		if err := f.Write(p, t); err != nil {
			panic(err)
		}
		chunk += 4 + len(t)
		if chunk >= b.mm.ChunkReal {
			if err := f.Close(p); err != nil {
				panic(err)
			}
			f = nil
		}
	}
	if f != nil {
		if err := f.Close(p); err != nil {
			panic(err)
		}
	}
	b.mm.shrink(b.memBytes)
	b.memBytes = 0
	b.tuples = nil
	b.keys = nil
}

// Delete frees the bag's spill files and memory.
func (b *Bag) Delete(p *simtime.Proc) {
	for _, f := range b.runs {
		f.Delete(p)
	}
	b.runs = nil
	b.mm.shrink(b.memBytes)
	b.memBytes = 0
	b.tuples = nil
	b.keys = nil
}

func putLen(dst []byte, n int) {
	dst[0] = byte(n)
	dst[1] = byte(n >> 8)
	dst[2] = byte(n >> 16)
	dst[3] = byte(n >> 24)
}

func getLen(src []byte) int {
	return int(src[0]) | int(src[1])<<8 | int(src[2])<<16 | int(src[3])<<24
}

// Iterator yields a bag's tuples.
type Iterator interface {
	Next(p *simtime.Proc) (Tuple, bool)
}

// bagMergeFactor bounds how many spilled runs an ordered bag reads
// concurrently off seek-bound media, mirroring io.sort.factor.
const bagMergeFactor = 10

// Iterate returns an iterator over the bag: spilled runs first, then the
// in-memory portion for unordered bags; a k-way merge by sort key for
// ordered bags. Iteration may run multiple times (each run rewinds the
// spill files).
//
// An ordered bag with many runs first consolidates them in rounds of
// bagMergeFactor, re-spilling the data — Pig's seek avoidance, and the
// source of the spam-quantiles job's amplified spill volume (Table 2:
// 3 GB in, 10.2 GB spilled). Unlike the Hadoop reduce merger, which the
// paper's integration taught to merge in a single round off SpongeFiles
// (§4.2.3), Pig's bag policy is medium-blind: the paper's Table 2 shows
// the same ~3.4× amplification with SpongeFile spilling.
func (b *Bag) Iterate(p *simtime.Proc) Iterator {
	if b.sortKey != nil {
		b.consolidate(p)
	}
	for _, f := range b.runs {
		f.Rewind()
	}
	if b.sortKey == nil {
		return &chainIter{b: b}
	}
	// Ordered: sort the in-memory portion and merge with the runs.
	b.sortMem()
	streams := make([]*runIter, 0, len(b.runs)+1)
	for _, f := range b.runs {
		streams = append(streams, &runIter{f: f})
	}
	m := &mergeIter{b: b, runs: streams}
	return m
}

// consolidate merges sorted runs, bagMergeFactor at a time, until at
// most bagMergeFactor remain. Each original byte is rewritten once.
func (b *Bag) consolidate(p *simtime.Proc) {
	for len(b.runs) > bagMergeFactor {
		batch := b.runs[:bagMergeFactor]
		streams := make([]*runIter, len(batch))
		for i, f := range batch {
			f.Rewind()
			streams[i] = &runIter{f: f}
		}
		merged := b.mm.target.Create(p, fmt.Sprintf("%s-cons%d", b.name, len(b.runs)))
		m := &mergeIter{b: &Bag{sortKey: b.sortKey}, runs: streams}
		for {
			t, ok := m.Next(p)
			if !ok {
				break
			}
			data := AppendTuple(nil, t)
			var hdr [4]byte
			putLen(hdr[:], len(data))
			if err := merged.Write(p, hdr[:]); err != nil {
				panic(err)
			}
			if err := merged.Write(p, data); err != nil {
				panic(err)
			}
		}
		if err := merged.Close(p); err != nil {
			panic(err)
		}
		for _, f := range batch {
			f.Delete(p)
		}
		b.runs = append(b.runs[bagMergeFactor:], merged)
	}
}

func (b *Bag) sortMem() {
	if len(b.tuples) == 0 {
		return
	}
	idx := make([]int, len(b.tuples))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool {
		return Compare(b.keys[idx[i]], b.keys[idx[j]]) < 0
	})
	tuples := make([][]byte, len(idx))
	keys := make([]Value, len(idx))
	for i, j := range idx {
		tuples[i], keys[i] = b.tuples[j], b.keys[j]
	}
	b.tuples, b.keys = tuples, keys
}

// runIter decodes tuples from one spill file with buffered reads.
type runIter struct {
	f    spill.File
	buf  []byte
	fill int
	off  int
	eof  bool
	cur  Tuple
}

const runBufReal = 64 << 10

// refill ensures at least need unconsumed bytes are buffered (compacting
// the consumed prefix first), reporting false at end of stream.
func (r *runIter) refill(p *simtime.Proc, need int) bool {
	if r.off > 0 {
		copy(r.buf[:cap(r.buf)], r.buf[r.off:r.fill])
		r.fill -= r.off
		r.off = 0
	}
	for r.fill < need && !r.eof {
		if cap(r.buf) < need {
			grown := make([]byte, r.fill, need+runBufReal)
			copy(grown, r.buf[:r.fill])
			r.buf = grown
		}
		r.buf = r.buf[:cap(r.buf)]
		n, err := r.f.Read(p, r.buf[r.fill:])
		if err != nil {
			panic(err)
		}
		if n == 0 {
			r.eof = true
		}
		r.fill += n
	}
	r.buf = r.buf[:r.fill]
	return r.fill >= need
}

func (r *runIter) next(p *simtime.Proc) bool {
	if r.fill-r.off < 4 && !r.refill(p, 4) {
		return false
	}
	n := getLen(r.buf[r.off:])
	if r.fill-r.off < 4+n && !r.refill(p, 4+n) {
		panic("pig: truncated tuple in bag run")
	}
	r.cur = DecodeTuple(r.buf[r.off+4 : r.off+4+n])
	r.off += 4 + n
	return true
}

// chainIter yields spilled runs in order, then the memory portion.
type chainIter struct {
	b      *Bag
	runIdx int
	cur    *runIter
	memIdx int
}

func (c *chainIter) Next(p *simtime.Proc) (Tuple, bool) {
	for c.runIdx < len(c.b.runs) {
		if c.cur == nil {
			c.cur = &runIter{f: c.b.runs[c.runIdx]}
		}
		if c.cur.next(p) {
			return c.cur.cur, true
		}
		c.cur = nil
		c.runIdx++
	}
	if c.memIdx < len(c.b.tuples) {
		t := DecodeTuple(c.b.tuples[c.memIdx])
		c.memIdx++
		return t, true
	}
	return nil, false
}

// mergeIter merges sorted runs and the sorted memory portion by key.
type mergeIter struct {
	b      *Bag
	runs   []*runIter
	primed bool
	memIdx int
}

func (m *mergeIter) Next(p *simtime.Proc) (Tuple, bool) {
	if !m.primed {
		live := m.runs[:0]
		for _, r := range m.runs {
			if r.next(p) {
				live = append(live, r)
			}
		}
		m.runs = live
		m.primed = true
	}
	// Pick the smallest head among runs and the memory cursor. Linear
	// scan: bags rarely have more than a few dozen runs.
	best := -1
	var bestKey Value
	for i, r := range m.runs {
		k := m.b.sortKey(r.cur)
		if best == -1 || Compare(k, bestKey) < 0 {
			best, bestKey = i, k
		}
	}
	if m.memIdx < len(m.b.keys) {
		if best == -1 || Compare(m.b.keys[m.memIdx], bestKey) < 0 {
			t := DecodeTuple(m.b.tuples[m.memIdx])
			m.memIdx++
			return t, true
		}
	}
	if best == -1 {
		return nil, false
	}
	t := m.runs[best].cur
	if !m.runs[best].next(p) {
		m.runs = append(m.runs[:best], m.runs[best+1:]...)
	}
	return t, true
}

// DefaultChunkVirtual is Pig's bag spill chunk size C (§2.1.3).
const DefaultChunkVirtual = 10 * media.MB
