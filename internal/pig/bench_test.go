package pig

import (
	"testing"
)

// Wall-clock micro-benchmarks of the tuple codec and comparison.

func BenchmarkTupleEncodeDecode(b *testing.B) {
	t := Tuple{
		"http://www.domain042.com/page/123456", "domain042.com", "en", 0.375,
		Tuple{"term0001", "term0042", "term0007", "term0100"},
		"padding-padding-padding-padding",
	}
	enc := AppendTuple(nil, t)
	b.SetBytes(int64(len(enc)))
	for i := 0; i < b.N; i++ {
		enc = AppendTuple(enc[:0], t)
		got := DecodeTuple(enc)
		if len(got) != len(t) {
			b.Fatal("corrupt")
		}
	}
}

func BenchmarkCompare(b *testing.B) {
	x := Tuple{"domain042.com", 0.375, int64(7)}
	y := Tuple{"domain042.com", 0.376, int64(6)}
	for i := 0; i < b.N; i++ {
		if Compare(x, y) >= 0 {
			b.Fatal("order wrong")
		}
	}
}

func BenchmarkParsePigLatin(b *testing.B) {
	const src = `
pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
proj  = FOREACH pages GENERATE language, terms;
grps  = GROUP proj BY language;
top   = FOREACH grps GENERATE group, TOPK(terms, 10);
STORE top INTO 'frequent-anchortext';
`
	for i := 0; i < b.N; i++ {
		s, err := Parse(src)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := s.Plan(); err != nil {
			b.Fatal(err)
		}
	}
}
