package pig

import (
	"strings"
	"testing"
)

// The paper's two evaluation queries as Pig Latin scripts.
const anchortextScript = `
-- Frequent Anchortext (§4.2.1): holistic UDF over skewed groups.
pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
proj  = FOREACH pages GENERATE language, terms;
grps  = GROUP proj BY language;
top   = FOREACH grps GENERATE group, TOPK(terms, 10);
STORE top INTO 'frequent-anchortext';
`

const spamScript = `
-- Spam Quantiles (§4.2.1): ordered bag, naive lack of projection.
pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
grps  = GROUP pages BY domain;
quant = FOREACH grps GENERATE group, QUANTILES(spam, 10);
STORE quant INTO 'spam-quantiles';
`

func TestParseAnchortextScript(t *testing.T) {
	s, err := Parse(anchortextScript)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Statements) != 5 {
		t.Fatalf("statements = %d", len(s.Statements))
	}
	load := s.Statements[0].(*LoadStmt)
	if load.Alias != "pages" || load.Input != "web" || len(load.Schema) != 6 {
		t.Fatalf("load = %+v", load)
	}
	proj := s.Statements[1].(*ProjectStmt)
	if len(proj.Fields) != 2 || proj.Fields[0] != "language" {
		t.Fatalf("project = %+v", proj)
	}
	grp := s.Statements[2].(*GroupStmt)
	if grp.Field != "language" || grp.Src != "proj" {
		t.Fatalf("group = %+v", grp)
	}
	apply := s.Statements[3].(*ApplyStmt)
	if apply.UDFName != "TOPK" || apply.Field != "terms" || apply.Arg != 10 {
		t.Fatalf("apply = %+v", apply)
	}
	store := s.Statements[4].(*StoreStmt)
	if store.Output != "frequent-anchortext" {
		t.Fatalf("store = %+v", store)
	}
}

func TestPlanAnchortext(t *testing.T) {
	s, err := Parse(anchortextScript)
	if err != nil {
		t.Fatal(err)
	}
	q, input, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if input != "web" || q.Name != "frequent-anchortext" {
		t.Fatalf("plan meta: input=%q name=%q", input, q.Name)
	}
	page := Tuple{"u", "d.com", "en", 0.5, Tuple{"a", "b"}, "meta"}
	if q.Project == nil {
		t.Fatal("plan lost the projection")
	}
	p := q.Project(page)
	if len(p) != 2 || p.String(0) != "en" {
		t.Fatalf("projection = %v", p)
	}
	if q.GroupKey(p) != "en" {
		t.Fatalf("group key = %q", q.GroupKey(p))
	}
	if q.SortKey != nil {
		t.Fatal("top-k query should not order its bags")
	}
	if q.UDF == nil {
		t.Fatal("no UDF planned")
	}
}

func TestPlanSpamQuantiles(t *testing.T) {
	s, err := Parse(spamScript)
	if err != nil {
		t.Fatal(err)
	}
	q, input, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if input != "web" || q.Name != "spam-quantiles" {
		t.Fatalf("plan meta wrong")
	}
	if q.Project != nil {
		t.Fatal("spam script must keep the naive no-projection plan")
	}
	page := Tuple{"u", "big.com", "en", 0.25, Tuple{}, "meta"}
	if q.GroupKey(page) != "big.com" {
		t.Fatalf("group key = %q", q.GroupKey(page))
	}
	if q.SortKey == nil || q.SortKey(page) != Value(0.25) {
		t.Fatal("quantiles query must order bags by the spam field")
	}
}

func TestParseFilter(t *testing.T) {
	src := `
pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
en    = FILTER pages BY spam < 0.5;
grps  = GROUP en BY domain;
quant = FOREACH grps GENERATE group, QUANTILES(spam, 4);
STORE quant INTO 'out';
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, _, err := s.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if q.Filter == nil {
		t.Fatal("plan lost the filter")
	}
	keep := Tuple{"u", "d", "en", 0.2, Tuple{}, "m"}
	drop := Tuple{"u", "d", "en", 0.9, Tuple{}, "m"}
	if !q.Filter(keep) || q.Filter(drop) {
		t.Fatal("filter predicate wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"pages = LOAD 'web';",     // missing AS
		"x = BOGUS y;",            // unknown verb
		"pages = LOAD 'web' AS (", // truncated
		"STORE nothing INTO out;", // unquoted output
		"a = LOAD 'w' AS (f); b = GROUP a BY nosuch; c = FOREACH b GENERATE group, TOPK(f, 1); STORE c INTO 'o';",
		"a = LOAD 'w' AS (f); b = GROUP a BY f; c = FOREACH b GENERATE group, NOSUCHUDF(f, 1); STORE c INTO 'o';",
		"a = LOAD 'w' AS (f); STORE a INTO 'o';", // no GROUP/UDF
	}
	for _, src := range cases {
		s, err := Parse(src)
		if err != nil {
			continue // lex/parse error: fine
		}
		if _, _, err := s.Plan(); err == nil {
			t.Fatalf("script %q should not plan", strings.TrimSpace(src))
		}
	}
}

func TestParseIsCaseInsensitiveOnKeywords(t *testing.T) {
	src := `
pages = load 'web' as (url, domain, language, spam, terms, meta);
grps  = group pages by domain;
quant = foreach grps generate group, quantiles(spam, 4);
store quant into 'out';
`
	s, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestCmpMatch(t *testing.T) {
	cases := []struct {
		c    int
		op   string
		want bool
	}{
		{0, "==", true}, {1, "==", false},
		{1, "!=", true}, {0, "!=", false},
		{-1, "<", true}, {0, "<", false},
		{0, "<=", true}, {1, "<=", false},
		{1, ">", true}, {0, ">", false},
		{0, ">=", true}, {-1, ">=", false},
		{0, "??", false},
	}
	for _, c := range cases {
		if got := cmpMatch(c.c, c.op); got != c.want {
			t.Fatalf("cmpMatch(%d, %q) = %v", c.c, c.op, got)
		}
	}
}
