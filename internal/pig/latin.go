package pig

// This file implements a small Pig Latin front-end: the paper's queries
// are Pig Latin scripts that Pig translates into MapReduce plans (§2.1),
// and the two evaluation queries fit a LOAD → [FILTER] → [FOREACH
// projection] → GROUP BY → FOREACH GENERATE UDF(...) → STORE pipeline.
// Parse turns such a script into a Script; Script.Plan lowers it to a
// GroupQuery ready to compile onto the MapReduce engine.
//
// Supported grammar (a faithful subset of Pig Latin 0.7):
//
//	alias = LOAD 'name' AS (field, field, ...);
//	alias = FILTER alias BY field <op> literal;        op: == != < <= > >=
//	alias = FOREACH alias GENERATE field, field, ...;
//	alias = GROUP alias BY field;
//	alias = FOREACH alias GENERATE group, UDF(field, n);
//	STORE alias INTO 'name';
//
// UDFs: TOPK(field, k) and QUANTILES(field, q); QUANTILES implies the
// group's bag is ordered by the field.

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// --- Lexer ---------------------------------------------------------------

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokPunct // = ( ) , ; and comparison operators
	tokEOF
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			// Comment to end of line.
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '\'':
			start := l.pos + 1
			end := strings.IndexByte(l.src[start:], '\'')
			if end < 0 {
				return nil, fmt.Errorf("pig latin: unterminated string at %d", l.pos)
			}
			l.emit(tokString, l.src[start:start+end])
			l.pos = start + end + 1
		case isIdentStart(rune(c)):
			start := l.pos
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, l.src[start:l.pos])
		case c >= '0' && c <= '9':
			start := l.pos
			for l.pos < len(l.src) && (l.src[l.pos] >= '0' && l.src[l.pos] <= '9' || l.src[l.pos] == '.') {
				l.pos++
			}
			l.emit(tokNumber, l.src[start:l.pos])
		case strings.ContainsRune("=!<>", rune(c)):
			start := l.pos
			l.pos++
			if l.pos < len(l.src) && l.src[l.pos] == '=' {
				l.pos++
			}
			l.emit(tokPunct, l.src[start:l.pos])
		case strings.ContainsRune("(),;", rune(c)):
			l.emit(tokPunct, string(c))
			l.pos++
		default:
			return nil, fmt.Errorf("pig latin: unexpected character %q at %d", c, l.pos)
		}
	}
	l.emit(tokEOF, "")
	return l.toks, nil
}

func (l *lexer) emit(kind tokKind, text string) {
	l.toks = append(l.toks, token{kind: kind, text: text, pos: l.pos})
}

func isIdentStart(r rune) bool { return unicode.IsLetter(r) || r == '_' }
func isIdentPart(r rune) bool  { return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' }

// --- AST -----------------------------------------------------------------

// Statement is one Pig Latin statement.
type Statement interface{ stmt() }

// LoadStmt is `alias = LOAD 'name' AS (fields...)`.
type LoadStmt struct {
	Alias  string
	Input  string
	Schema []string
}

// FilterStmt is `alias = FILTER src BY field op literal`.
type FilterStmt struct {
	Alias, Src string
	Field      string
	Op         string
	Literal    Value
}

// ProjectStmt is `alias = FOREACH src GENERATE fields...` (no UDF).
type ProjectStmt struct {
	Alias, Src string
	Fields     []string
}

// GroupStmt is `alias = GROUP src BY field`.
type GroupStmt struct {
	Alias, Src string
	Field      string
}

// ApplyStmt is `alias = FOREACH src GENERATE group, UDF(field, n)`.
type ApplyStmt struct {
	Alias, Src string
	UDFName    string
	Field      string
	Arg        int
}

// StoreStmt is `STORE alias INTO 'name'`.
type StoreStmt struct {
	Src    string
	Output string
}

func (*LoadStmt) stmt()    {}
func (*FilterStmt) stmt()  {}
func (*ProjectStmt) stmt() {}
func (*GroupStmt) stmt()   {}
func (*ApplyStmt) stmt()   {}
func (*StoreStmt) stmt()   {}

// Script is a parsed Pig Latin script.
type Script struct {
	Statements []Statement
}

// --- Parser ----------------------------------------------------------------

type parser struct {
	toks []token
	pos  int
}

// Parse parses a Pig Latin script.
func Parse(src string) (*Script, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var s Script
	for p.peek().kind != tokEOF {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		s.Statements = append(s.Statements, st)
	}
	if len(s.Statements) == 0 {
		return nil, fmt.Errorf("pig latin: empty script")
	}
	return &s, nil
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.next()
	if t.kind != kind || (text != "" && !strings.EqualFold(t.text, text)) {
		return t, fmt.Errorf("pig latin: expected %q near position %d, got %q", text, t.pos, t.text)
	}
	return t, nil
}

func (p *parser) keyword(t token) string { return strings.ToUpper(t.text) }

func (p *parser) statement() (Statement, error) {
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if p.keyword(first) == "STORE" {
		return p.storeStmt()
	}
	alias := first.text
	if _, err := p.expect(tokPunct, "="); err != nil {
		return nil, err
	}
	verb, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	switch p.keyword(verb) {
	case "LOAD":
		return p.loadStmt(alias)
	case "FILTER":
		return p.filterStmt(alias)
	case "FOREACH":
		return p.foreachStmt(alias)
	case "GROUP":
		return p.groupStmt(alias)
	}
	return nil, fmt.Errorf("pig latin: unknown verb %q", verb.text)
}

func (p *parser) loadStmt(alias string) (Statement, error) {
	in, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "AS"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	var schema []string
	for {
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		schema = append(schema, f.text)
		t := p.next()
		if t.text == ")" {
			break
		}
		if t.text != "," {
			return nil, fmt.Errorf("pig latin: expected , or ) in schema, got %q", t.text)
		}
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &LoadStmt{Alias: alias, Input: in.text, Schema: schema}, nil
}

func (p *parser) filterStmt(alias string) (Statement, error) {
	src, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "BY"); err != nil {
		return nil, err
	}
	field, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokPunct || !validCmp(op.text) {
		return nil, fmt.Errorf("pig latin: bad comparison %q", op.text)
	}
	lit := p.next()
	var val Value
	switch lit.kind {
	case tokString:
		val = lit.text
	case tokNumber:
		if strings.Contains(lit.text, ".") {
			f, err := strconv.ParseFloat(lit.text, 64)
			if err != nil {
				return nil, err
			}
			val = f
		} else {
			n, err := strconv.ParseInt(lit.text, 10, 64)
			if err != nil {
				return nil, err
			}
			val = n
		}
	default:
		return nil, fmt.Errorf("pig latin: bad literal %q", lit.text)
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &FilterStmt{Alias: alias, Src: src.text, Field: field.text, Op: op.text, Literal: val}, nil
}

func validCmp(op string) bool {
	switch op {
	case "==", "!=", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func (p *parser) foreachStmt(alias string) (Statement, error) {
	src, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "GENERATE"); err != nil {
		return nil, err
	}
	first, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	// `GENERATE group, UDF(field, n)` → apply; else a projection list.
	if strings.EqualFold(first.text, "group") {
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		udf, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		field, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ","); err != nil {
			return nil, err
		}
		num, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		arg, err := strconv.Atoi(num.text)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return &ApplyStmt{Alias: alias, Src: src.text, UDFName: strings.ToUpper(udf.text), Field: field.text, Arg: arg}, nil
	}
	fields := []string{first.text}
	for p.peek().text == "," {
		p.next()
		f, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		fields = append(fields, f.text)
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &ProjectStmt{Alias: alias, Src: src.text, Fields: fields}, nil
}

func (p *parser) groupStmt(alias string) (Statement, error) {
	src, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "BY"); err != nil {
		return nil, err
	}
	field, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &GroupStmt{Alias: alias, Src: src.text, Field: field.text}, nil
}

func (p *parser) storeStmt() (Statement, error) {
	src, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokIdent, "INTO"); err != nil {
		return nil, err
	}
	out, err := p.expect(tokString, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokPunct, ";"); err != nil {
		return nil, err
	}
	return &StoreStmt{Src: src.text, Output: out.text}, nil
}

// --- Planner ---------------------------------------------------------------

// Plan lowers the script to a GroupQuery. The pipeline must be LOAD →
// [FILTER] → [FOREACH projection] → GROUP → FOREACH GENERATE UDF →
// STORE, which covers both of the paper's queries. The returned query's
// Input field is left empty: the caller attaches the dataset (the LOAD
// name is returned for it to resolve).
func (s *Script) Plan() (q *GroupQuery, input string, err error) {
	var (
		load    *LoadStmt
		filter  *FilterStmt
		project *ProjectStmt
		group   *GroupStmt
		apply   *ApplyStmt
		store   *StoreStmt
	)
	for _, st := range s.Statements {
		switch v := st.(type) {
		case *LoadStmt:
			if load != nil {
				return nil, "", fmt.Errorf("pig latin: multiple LOADs")
			}
			load = v
		case *FilterStmt:
			filter = v
		case *ProjectStmt:
			project = v
		case *GroupStmt:
			group = v
		case *ApplyStmt:
			apply = v
		case *StoreStmt:
			store = v
		}
	}
	if load == nil || group == nil || apply == nil || store == nil {
		return nil, "", fmt.Errorf("pig latin: pipeline needs LOAD, GROUP, a UDF FOREACH, and STORE")
	}

	// Resolve field positions through the (optional) projection.
	schema := load.Schema
	fieldIdx := func(name string, sch []string) (int, error) {
		for i, f := range sch {
			if f == name {
				return i, nil
			}
		}
		return 0, fmt.Errorf("pig latin: unknown field %q (schema %v)", name, sch)
	}

	q = &GroupQuery{Name: store.Output}

	if filter != nil {
		idx, err := fieldIdx(filter.Field, schema)
		if err != nil {
			return nil, "", err
		}
		op, lit := filter.Op, filter.Literal
		q.Filter = func(t Tuple) bool { return cmpMatch(Compare(t[idx], lit), op) }
	}

	postSchema := schema
	if project != nil {
		idxs := make([]int, len(project.Fields))
		for i, f := range project.Fields {
			idx, err := fieldIdx(f, schema)
			if err != nil {
				return nil, "", err
			}
			idxs[i] = idx
		}
		q.Project = func(t Tuple) Tuple {
			out := make(Tuple, len(idxs))
			for i, idx := range idxs {
				out[i] = t[idx]
			}
			return out
		}
		postSchema = project.Fields
	}

	gidx, err := fieldIdx(group.Field, postSchema)
	if err != nil {
		return nil, "", err
	}
	q.GroupKey = func(t Tuple) string { return t.String(gidx) }

	uidx, err := fieldIdx(apply.Field, postSchema)
	if err != nil {
		return nil, "", err
	}
	switch apply.UDFName {
	case "TOPK":
		q.UDF = TopK(uidx, apply.Arg, 0)
	case "QUANTILES":
		q.UDF = Quantiles(uidx, apply.Arg)
		q.SortKey = func(t Tuple) Value { return t[uidx] }
	default:
		return nil, "", fmt.Errorf("pig latin: unknown UDF %q", apply.UDFName)
	}
	return q, load.Input, nil
}

func cmpMatch(c int, op string) bool {
	switch op {
	case "==":
		return c == 0
	case "!=":
		return c != 0
	case "<":
		return c < 0
	case "<=":
		return c <= 0
	case ">":
		return c > 0
	case ">=":
		return c >= 0
	}
	return false
}
