// Quickstart demonstrates the SpongeFile API on a small simulated
// cluster: create a file, write more data than the local sponge holds,
// watch chunks land in local memory, remote memory and disk, then read
// everything back and delete it.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"

	"spongefiles/internal/cluster"
	"spongefiles/internal/media"
	"spongefiles/internal/simtime"
	"spongefiles/internal/sponge"
)

func main() {
	// A three-node rack; each node reserves 4 MB of sponge memory
	// (4 chunks of the paper's 1 MB chunk size).
	cfg := cluster.PaperConfig()
	cfg.Workers = 3
	cfg.SpongeMemory = 4 * media.MB

	sim := simtime.New()
	c := cluster.New(sim, cfg)
	svc := sponge.Start(c, sponge.DefaultConfig())

	sim.Spawn("task", func(p *simtime.Proc) {
		// A task registers with its node's sponge service and gets an
		// agent; the agent creates SpongeFiles.
		agent := svc.NewAgent(c.Nodes[0])
		defer agent.Close()

		f := agent.Create(p, "quickstart-spill")

		// Spill 10 virtual MB: 4 chunks fit locally, 4+4 fit on the two
		// rack peers... but the allocator also keeps trying stale
		// entries, so watch the real placement below.
		payload := make([]byte, 10*svc.ChunkReal())
		for i := range payload {
			payload[i] = byte(i * 131)
		}
		if err := f.Write(p, payload); err != nil {
			log.Fatalf("write: %v", err)
		}
		if err := f.Close(p); err != nil {
			log.Fatalf("close: %v", err)
		}

		st := f.Stats()
		fmt.Printf("spilled %d bytes as %d chunks in %v\n",
			st.BytesWritten, st.Chunks, p.Now())
		for kind := sponge.LocalMem; kind <= sponge.RemoteFS; kind++ {
			fmt.Printf("  %-11s %d chunks\n", kind, st.ByKind[kind])
		}

		// Read it back (sequential, with prefetch of remote chunks).
		start := p.Now()
		got := make([]byte, 0, len(payload))
		buf := make([]byte, 64<<10)
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				log.Fatalf("read: %v", err)
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, payload) {
			log.Fatal("round trip corrupted data")
		}
		fmt.Printf("read back %d bytes intact in %v\n", len(got), p.Now().Sub(start))

		// Delete returns every chunk to its pool.
		f.Delete(p)
		fmt.Printf("after delete: %d free chunks cluster-wide (of %d)\n",
			svc.TotalFreeChunks(), 3*4)
		fmt.Printf("task touched %d machine(s)\n", agent.MachinesUsed())
	})
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}
}
