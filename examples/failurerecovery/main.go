// Failurerecovery demonstrates SpongeFiles' failure semantics (§3.1 and
// §4.3): a reduce task spills across several rack peers, one of those
// peers dies mid-job, the task's read hits a lost chunk and fails, and
// the MapReduce framework restarts it — the job still completes with
// the right answer. It then prints the §4.3 probability model showing
// why this trade is acceptable.
//
//	go run ./examples/failurerecovery
package main

import (
	"fmt"
	"log"

	"spongefiles/internal/cluster"
	"spongefiles/internal/dfs"
	"spongefiles/internal/failure"
	"spongefiles/internal/mapreduce"
	"spongefiles/internal/media"
	"spongefiles/internal/simtime"
	"spongefiles/internal/spill"
	"spongefiles/internal/sponge"
	"spongefiles/internal/workload"
)

func main() {
	cfg := cluster.PaperConfig()
	cfg.Workers = 6
	cfg.SpongeMemory = 256 * media.MB

	sim := simtime.New()
	c := cluster.New(sim, cfg)
	fs := dfs.New(c)
	eng := mapreduce.NewEngine(c, fs)
	svc := sponge.Start(c, sponge.DefaultConfig())

	nums := workload.DefaultNumbers(c.Cfg.Scale)
	nums.TotalVirtual = media.GB // 1 GB: a quick demonstration
	fs.AddExisting("/in/numbers", nums.TotalVirtual)
	splits := len(fs.Lookup("/in/numbers").Blocks)

	conf := mapreduce.JobConf{
		Name:        "sum",
		Input:       nums.Input("/in/numbers", splits),
		NumReducers: 1,
		Map: func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {
			emit(v[:8], v[8:]) // route everything to the one reducer
		},
		Reduce: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
			for {
				if _, ok := vals.Next(); !ok {
					break
				}
			}
		},
		SpillFactory: spill.SpongeFactory(svc),
	}

	// Kill a rack peer ~45 s in — while the straggling reduce's chunks
	// are spread across the rack.
	failure.InjectNodeFailure(svc, eng, 3, 45*simtime.Second)

	var res *mapreduce.JobResult
	sim.Spawn("driver", func(p *simtime.Proc) {
		res = eng.Submit(conf).Wait(p)
	})
	if _, err := sim.Run(); err != nil {
		log.Fatal(err)
	}

	if res.Failed {
		log.Fatal("job failed outright — restart path broken")
	}
	fmt.Printf("job completed in %.1f s (virtual)\n", res.Duration().Seconds())
	attempts := map[string]int{}
	var failedAttempts int
	for _, tr := range res.Tasks {
		key := fmt.Sprintf("%s-%d", tr.Kind, tr.Index)
		attempts[key]++
		if tr.Err != nil {
			failedAttempts++
			fmt.Printf("  attempt %d of %s failed on node %d: %v\n",
				tr.Attempt, key, tr.Node, tr.Err)
		}
	}
	if failedAttempts == 0 {
		fmt.Println("  (the dying node held none of this run's chunks — rerun to see a restart)")
	} else {
		fmt.Printf("  framework restarted the task; %d attempt(s) lost to the node failure\n", failedAttempts)
	}

	fmt.Println("\n§4.3 failure model (MTTF 100 months, task of 120 min):")
	for _, row := range failure.Table(120*simtime.Minute, failure.PaperMTTF(), []int{1, 5, 10, 20, 40}) {
		fmt.Printf("  data on %2d machines -> P(failure) = %.4f%%\n",
			row.Machines, row.Probability*100)
	}
	fmt.Println("\neven rack-wide spilling adds only ~0.1% failure probability —")
	fmt.Println("and SpongeFiles shorten long tasks, shrinking the window further.")
}
