// Median runs the paper's MapReduce median job (§4.2.1) end to end on a
// simulated 29-node cluster, once with stock disk spilling and once with
// SpongeFiles, and prints both runtimes and the straggler's spill
// statistics (the job behind Table 2's first row and the biggest wins in
// Figures 4 and 5).
//
//	go run ./examples/median [-size 0.25]
package main

import (
	"flag"
	"fmt"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
)

func main() {
	size := flag.Float64("size", 0.25, "dataset scale (1.0 = the paper's 10 GB)")
	flag.Parse()

	fmt.Printf("median of the numbers dataset at %.0f%% of the paper's size\n\n", *size*100)
	var runtimes [2]float64
	for i, sponge := range []bool{false, true} {
		mode := "disk spilling (stock Hadoop)"
		if sponge {
			mode = "SpongeFile spilling"
		}
		res := bench.RunMacro(bench.Median, bench.MacroConfig{
			NodeMemory: 4 * media.GB, // the paper's low-memory configuration
			Sponge:     sponge,
			SizeFactor: *size,
		})
		runtimes[i] = res.Runtime.Seconds()
		fmt.Printf("%s\n", mode)
		fmt.Printf("  job runtime:       %7.1f s\n", res.Runtime.Seconds())
		fmt.Printf("  median value:      %.3f\n", res.MedianValue)
		fmt.Printf("  straggler input:   %s\n", bench.HumanBytes(float64(res.StragglerInput)))
		fmt.Printf("  straggler spilled: %s", bench.HumanBytes(float64(res.StragglerSpilled)))
		if sponge {
			fmt.Printf(" in %d sponge chunks across %d machines",
				res.StragglerChunks, res.StragglerRun.Spill.Machines)
		} else {
			fmt.Printf(" to local disk (%d merge rounds)", res.StragglerRun.MergeRounds)
		}
		fmt.Println()
		fmt.Println()
	}
	fmt.Printf("SpongeFiles reduced the runtime by %.0f%%\n",
		(1-runtimes[1]/runtimes[0])*100)
}
