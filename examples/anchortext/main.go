// Anchortext runs the paper's Frequent Anchortext Pig query (§4.2.1):
// group web pages by language and compute the 10 most frequent
// anchortext terms per language with a one-pass holistic UDF. The whole
// projected dataset funnels into one straggling reduce task whose bag
// spills under memory pressure — the case skew avoidance cannot fix.
//
//	go run ./examples/anchortext [-size 0.2] [-sponge]
package main

import (
	"flag"
	"fmt"
	"sort"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
)

func main() {
	size := flag.Float64("size", 0.2, "dataset scale (1.0 = the paper's 10 GB corpus)")
	sponge := flag.Bool("sponge", true, "spill to SpongeFiles (false = stock disk)")
	flag.Parse()

	res := bench.RunMacro(bench.Anchortext, bench.MacroConfig{
		NodeMemory: 16 * media.GB,
		Sponge:     *sponge,
		SizeFactor: *size,
	})

	mode := "disk"
	if *sponge {
		mode = "SpongeFiles"
	}
	fmt.Printf("frequent-anchortext (%s spilling): %.1f s\n", mode, res.Runtime.Seconds())
	fmt.Printf("straggler input %s, spilled %s\n\n",
		bench.HumanBytes(float64(res.StragglerInput)),
		bench.HumanBytes(float64(res.StragglerSpilled)))

	langs := make([]string, 0, len(res.GroupOut))
	for lang := range res.GroupOut {
		langs = append(langs, lang)
	}
	sort.Strings(langs)
	for _, lang := range langs {
		fmt.Printf("top anchortext terms for %q:\n", lang)
		for _, t := range res.GroupOut[lang] {
			fmt.Printf("  %-10s %6d occurrences\n", t.String(0), t.Int(1))
		}
	}
}
