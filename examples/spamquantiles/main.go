// Spamquantiles runs the paper's Spam Quantiles Pig query (§4.2.1):
// group web pages by domain and compute spam-score quantiles per domain
// with an ad-hoc UDF over an ordered bag — deliberately without
// projecting the tuples first, the "hastily-assembled" plan whose
// straggler (the domain holding ~30% of the corpus) spills several times
// its input.
//
//	go run ./examples/spamquantiles [-size 0.2] [-sponge]
package main

import (
	"flag"
	"fmt"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
)

func main() {
	size := flag.Float64("size", 0.2, "dataset scale (1.0 = the paper's 10 GB corpus)")
	sponge := flag.Bool("sponge", true, "spill to SpongeFiles (false = stock disk)")
	flag.Parse()

	res := bench.RunMacro(bench.SpamQuantiles, bench.MacroConfig{
		NodeMemory: 16 * media.GB,
		Sponge:     *sponge,
		SizeFactor: *size,
	})

	mode := "disk"
	if *sponge {
		mode = "SpongeFiles"
	}
	fmt.Printf("spam-quantiles (%s spilling): %.1f s\n", mode, res.Runtime.Seconds())
	fmt.Printf("straggler input %s, spilled %s in %d chunks\n\n",
		bench.HumanBytes(float64(res.StragglerInput)),
		bench.HumanBytes(float64(res.StragglerSpilled)),
		res.StragglerChunks)

	// Print the big domain's quantiles (the straggling group).
	const big = "domain000.com"
	rows := res.GroupOut[big]
	if len(rows) == 0 {
		fmt.Println("no output for the dominant domain?")
		return
	}
	fmt.Printf("spam-score quantiles for %s (the dominant domain):\n", big)
	for _, t := range rows {
		fmt.Printf("  q%-2d/10: %.4f\n", t.Int(0), t.Float(1))
	}
	fmt.Printf("(%d domains produced quantiles in total)\n", len(res.GroupOut))
}
