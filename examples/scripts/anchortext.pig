-- Frequent Anchortext (SpongeFiles paper, §4.2.1): group web pages by
-- language and find the 10 most frequently-occurring anchortext terms
-- per language — a holistic UDF over skewed groups.
--
--   go run ./cmd/pigrun -size 0.1 examples/scripts/anchortext.pig

pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
proj  = FOREACH pages GENERATE language, terms;
grps  = GROUP proj BY language;
top   = FOREACH grps GENERATE group, TOPK(terms, 10);
STORE top INTO 'frequent-anchortext';
