-- Spam Quantiles (SpongeFiles paper, §4.2.1): group web pages by domain
-- and compute the spam-score quantiles per domain with an ordered bag.
-- Deliberately no projection: the "hastily-assembled ad-hoc UDF" plan
-- whose straggler spills several times its input.
--
--   go run ./cmd/pigrun -size 0.1 examples/scripts/spamquantiles.pig

pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
grps  = GROUP pages BY domain;
quant = FOREACH grps GENERATE group, QUANTILES(spam, 10);
STORE quant INTO 'spam-quantiles';
