package spongefiles_test

// End-to-end observability: a 3-node TCP sponge cluster shares one obs
// registry between the simulated service and its wire daemons, a faulty
// spill/read round trip moves the allocator, retry, and readahead
// counters, and a live scrape over the wire's OpMetrics — the same path
// `spongectl stats -addrs` uses — renders them in the per-node table.

import (
	"bytes"
	"strings"
	"testing"

	"spongefiles/internal/cluster"
	"spongefiles/internal/media"
	"spongefiles/internal/obs"
	"spongefiles/internal/simtime"
	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

func TestStatsScrapeFromLiveCluster(t *testing.T) {
	cfg := cluster.PaperConfig()
	cfg.Workers = 4
	cfg.SpongeMemory = 2 * media.MB // two local chunks, the rest spills
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	scfg := sponge.DefaultConfig()
	scfg.LocalDiskEnabled = false // keep the load on the remote-memory path
	svc := sponge.Start(c, scfg)

	// Nodes 1..3 run real TCP daemons instrumented into the service's
	// registry, so one scrape shows the whole cluster's story.
	addrs := make(map[int]string)
	for n := 1; n <= 3; n++ {
		pool := sponge.NewPool(svc.ChunkReal(), 8)
		srv, err := wire.ServeOptions(pool, "127.0.0.1:0", wire.Options{Metrics: svc.Metrics()})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		addrs[n] = srv.Addr()
	}
	wt := wire.NewTransport(addrs, svc.Transport())
	t.Cleanup(func() { wt.Close() })
	// A fixed-seed fault layer on top of the wire forces retries, so the
	// retry counters have something real to count.
	faults := sponge.NewFaultTransport(wt, sponge.FaultConfig{Seed: 7, DropRate: 0.2})
	svc.SetTransport(faults)

	chunk := svc.ChunkReal()
	data := make([]byte, 20*chunk) // 18 remote chunks: more than two peers hold, so all three serve
	for i := range data {
		data[i] = byte(i*17 + 3)
	}
	var stats sponge.FileStats
	sim.Spawn("task", func(p *simtime.Proc) {
		agent := svc.NewAgent(c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "observed")
		if err := f.Write(p, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		got := make([]byte, 0, len(data))
		buf := make([]byte, chunk)
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip corrupt: %d bytes back, want %d", len(got), len(data))
		}
		stats = f.Stats()
		f.Delete(p)
	})
	sim.MustRun()

	// Scrape every node over TCP, exactly as `spongectl stats -addrs`
	// does: Dial, OpMetrics, ParseText.
	var nodes []obs.NodeSamples
	for n := 1; n <= 3; n++ {
		cl, err := wire.Dial(addrs[n])
		if err != nil {
			t.Fatalf("dial node %d: %v", n, err)
		}
		text, err := cl.Metrics()
		cl.Close()
		if err != nil {
			t.Fatalf("scrape node %d: %v", n, err)
		}
		samples, err := obs.ParseText(text)
		if err != nil {
			t.Fatalf("parse node %d scrape: %v", n, err)
		}
		nodes = append(nodes, obs.NodeSamples{Name: addrs[n], Samples: samples})
	}

	// The registry is shared, so any node's scrape carries the full
	// cluster view; assert against the first.
	s := nodes[0].Samples

	// Allocator outcomes: the spill counters must agree with the file's
	// own placement accounting, and the workload must have gone remote.
	if stats.ByKind[sponge.RemoteMem] == 0 {
		t.Fatal("workload never spilled remotely; the scrape exercises nothing")
	}
	if got := s[`sponge_spill_chunks_total{kind="remote_mem"}`]; got != int64(stats.ByKind[sponge.RemoteMem]) {
		t.Errorf("remote_mem spill counter = %d, want %d", got, stats.ByKind[sponge.RemoteMem])
	}
	if s[`sponge_spill_fallback_total{reason="local_full"}`] == 0 {
		t.Error("local pool exhaustion left no fallback marks")
	}

	// Retries: the 20% drop rate must have injected faults and the
	// service must have retried through them.
	if s["sponge_fault_drops_total"] == 0 {
		t.Error("fault layer dropped nothing; retry assertion is vacuous")
	}
	retries := s[`sponge_retries_total{op="alloc"}`] +
		s[`sponge_retries_total{op="read"}`] +
		s[`sponge_retries_total{op="poll"}`]
	if retries == 0 {
		t.Error("injected drops caused no observed retries")
	}

	// Readahead: every chunk of the sequential read-back is either a
	// window hit or an inline fetch.
	hits := s["sponge_ra_window_hits_total"]
	inline := s["sponge_ra_inline_fetch_total"]
	if hits+inline != int64(stats.Chunks) {
		t.Errorf("window hits %d + inline %d != %d chunks", hits, inline, stats.Chunks)
	}
	if hits == 0 {
		t.Error("depth-4 window produced no hits on a remote-heavy file")
	}

	// The wire daemons counted their own traffic into the same registry,
	// labeled by listen address.
	for n := 1; n <= 3; n++ {
		id := `spongewire_requests_total{listen="` + addrs[n] + `",op="alloc_write"}`
		if s[id] == 0 {
			t.Errorf("node %d served no alloc_write requests (%s)", n, id)
		}
	}

	// Render the same table `spongectl stats` prints and spot-check it.
	var table strings.Builder
	if err := obs.RenderNodeTable(&table, nodes,
		"sponge_spill", "sponge_retries", "sponge_ra_", "spongewire_requests_total"); err != nil {
		t.Fatalf("render: %v", err)
	}
	out := table.String()
	for _, want := range []string{
		"METRIC", "TOTAL", addrs[1],
		`sponge_spill_chunks_total{kind="remote_mem"}`,
		"sponge_ra_window_hits_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
