# Tier-1: the must-stay-green gate (build + full test suite).
tier1:
	go build ./... && go test ./...

# Tier-2: go vet plus race-detector runs over the concurrent subsystems
# (wire protocol demux/dispatch, spill targets).
tier2:
	./scripts/check.sh

# Scenario matrix: run the full seed suite of named fault-injection
# scenarios against real child-process clusters (spongesim -list shows
# the cases) and write the machine-readable report for CI.
scenarios:
	go run ./cmd/spongesim -run all -report report.json

# Quick subset of the scenario matrix (the cases marked q in -list),
# used as the CI smoke.
scenarios-quick:
	go run ./cmd/spongesim -run all -quick -report report.json

# Observability smoke: boot a 3-node TCP cluster of sponge daemons,
# scrape each over OpMetrics and the HTTP /metrics sidecar, and check
# known counters appear in the expositions and the stats table.
stats-smoke:
	./scripts/stats_smoke.sh

# Wire protocol benchmarks: lock-step vs pipelined at 1, 4 and 16
# concurrent requests (see BENCH_wire.json for recorded results).
bench-wire:
	go test ./internal/sponge/wire -run '^$$' -bench BenchmarkWire -benchtime 1s -cpu=1,4,16

# Macro perf harness: host-level cost of the three paper jobs, legacy
# allocation machinery vs the pooled hot path; regenerates
# BENCH_macro.json (tune with BENCH_SIZE / BENCH_WORKERS / BENCH_OUT).
bench:
	./scripts/bench.sh

# Fault-injection experiment: spill placement, retries, and timing vs
# exchange drop rate, simulated vs real-TCP wire transport; regenerates
# BENCH_faults.json.
bench-faults:
	go run ./cmd/benchtab -out BENCH_faults.json faults

# Readahead experiment: window depth vs injected per-exchange latency,
# read-back throughput of a fully remote file over both transports;
# regenerates BENCH_readahead.json.
bench-readahead:
	go run ./cmd/benchtab -out BENCH_readahead.json readahead

# Local transport tier ladder: steady-state 64KiB reads over loopback
# TCP, unix sockets, sendfile spill serves, and the fd-passing pread
# fast paths (spill file + memfd pool segments); patches the measured
# rungs into BENCH_wire.json's tier_ladder section.
bench-tier:
	go run ./cmd/benchtab -out BENCH_wire.json tier

# Tracker dissemination at scale: tracker messages per node per second,
# full-poll vs delta, at 100 and 1000 simulated nodes under identical
# churn; regenerates BENCH_tracker.json.
bench-tracker:
	go run ./cmd/benchtab -out BENCH_tracker.json tracker

# Combine-scope sweep: {no combiner, task combine, node combine, node
# combine + sponge-backed overflow} x {Zipf wordcount, uniform
# wordcount, algebraic Pig domain count}; shuffle volume, spill
# traffic, and runtime per cell; regenerates BENCH_combine.json.
bench-combine:
	go run ./cmd/benchtab -out BENCH_combine.json combine

.PHONY: tier1 tier2 scenarios scenarios-quick stats-smoke bench-wire bench bench-faults bench-readahead bench-tier bench-tracker bench-combine
