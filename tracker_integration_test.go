package spongefiles_test

// Replicated-tracker integration over real TCP: a leader tracker polls
// live sponge servers and hands its snapshot to a standby each cycle;
// killing the leader mid-job lets the standby's lease expire and
// promote itself, and the job keeps allocating off the handed-off free
// list — every chunk written before and after the failover reads back
// intact, with zero lost chunks.

import (
	"bytes"
	"testing"
	"time"

	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

func TestTrackerFailoverMidJobOverTCP(t *testing.T) {
	const chunkSize = 512

	// Three sponge servers, each pushing delta reports at the tracker
	// group (leader first — the reporter sticks with whoever applies).
	var servers []*wire.Server
	var pools []*sponge.Pool
	var addrs []string

	// The tracker pair: leader (delta mode, handing off to the standby
	// every 30ms) and standby (promotes after a 150ms lease).
	standby := wire.NewTrackerOptions(nil, wire.TrackerOptions{
		Interval: 30 * time.Millisecond,
		Standby:  true,
		Lease:    150 * time.Millisecond,
	})
	defer standby.Close()
	ss, err := standby.Serve("127.0.0.1:0", wire.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ss.Close()

	for i := 0; i < 3; i++ {
		pool := sponge.NewPool(chunkSize, 16)
		pools = append(pools, pool)
		srv, err := wire.Serve(pool, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}

	leader := wire.NewTrackerOptions(addrs, wire.TrackerOptions{
		Interval:    30 * time.Millisecond,
		Delta:       true,
		AntiEntropy: 5,
		Standbys:    []string{ss.Addr()},
	})
	ls, err := leader.Serve("127.0.0.1:0", wire.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	trackerAddrs := []string{ls.Addr(), ss.Addr()}

	// Wait for the standby to hold a handed-off snapshot covering all
	// three servers before the job starts.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && len(standby.Query()) < 3 {
		time.Sleep(10 * time.Millisecond)
	}
	if got := standby.Query(); len(got) < 3 {
		t.Fatalf("standby snapshot before the job: %+v", got)
	}

	// freeList asks the tracker group, preferring whichever answers.
	freeList := func() []wire.TrackerEntry {
		for _, ta := range trackerAddrs {
			c, err := wire.Dial(ta)
			if err != nil {
				continue
			}
			entries, err := c.FreeList()
			c.Close()
			if err == nil && len(entries) > 0 {
				return entries
			}
		}
		return nil
	}

	// The job: 24 chunks, allocated greedily at the most-free server
	// from the tracker group's answer. The leader is killed after chunk
	// 8 — mid-job — and allocation must keep going off the standby's
	// handed-off state.
	type placed struct {
		addr   string
		handle int
		data   []byte
	}
	clients := make(map[string]*wire.Client)
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()
	clientFor := func(addr string) *wire.Client {
		if c := clients[addr]; c != nil {
			return c
		}
		c, err := wire.Dial(addr)
		if err != nil {
			t.Fatalf("dial %s: %v", addr, err)
		}
		clients[addr] = c
		return c
	}
	owner := sponge.TaskID{Node: 1, PID: 42}
	var chunks []placed
	for i := 0; i < 24; i++ {
		if i == 8 {
			ls.Close()
			leader.Close()
		}
		data := bytes.Repeat([]byte{byte(i + 1)}, chunkSize)
		entries := freeList()
		if entries == nil {
			// Mid-failover gap: the standby may not have promoted yet,
			// but its free list answers regardless of role; only a full
			// cluster returns nothing.
			t.Fatalf("chunk %d: no tracker answered with free servers", i)
		}
		var lastErr error
		stored := false
		for _, e := range entries {
			h, err := clientFor(e.Addr).AllocWrite(owner, data)
			if err != nil {
				lastErr = err
				continue
			}
			chunks = append(chunks, placed{addr: e.Addr, handle: h, data: data})
			stored = true
			break
		}
		if !stored {
			t.Fatalf("chunk %d found no home: %v", i, lastErr)
		}
	}

	// The standby must have taken over by now (the job outlived the
	// lease), under a bumped epoch, and seen delta churn of its own.
	deadline = time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) && !standby.IsLeader() {
		time.Sleep(10 * time.Millisecond)
	}
	if !standby.IsLeader() {
		t.Fatal("standby never promoted after the leader died")
	}
	if standby.Epoch() < 2 {
		t.Fatalf("promoted epoch = %d, want >= 2", standby.Epoch())
	}
	if epoch, isLeader, err := clientFor(ss.Addr()).TrackerInfo(); err != nil || !isLeader || epoch != standby.Epoch() {
		t.Fatalf("TrackerInfo on promoted standby = (%d, %v, %v)", epoch, isLeader, err)
	}

	// Zero lost chunks: every chunk placed before and after the
	// failover reads back bit-exact.
	buf := make([]byte, chunkSize)
	for i, pc := range chunks {
		n, err := clientFor(pc.addr).ReadInto(pc.handle, buf)
		if err != nil {
			t.Fatalf("chunk %d lost after failover: %v", i, err)
		}
		if !bytes.Equal(buf[:n], pc.data) {
			t.Fatalf("chunk %d corrupt after failover", i)
		}
	}
	if len(chunks) != 24 {
		t.Fatalf("placed %d chunks, want 24", len(chunks))
	}

	// Sanity: the job really did spread across the cluster.
	used := 0
	for _, p := range pools {
		if p.Free() < p.Chunks() {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("job used %d servers, want >= 2", used)
	}
	if len(servers) != 3 {
		t.Fatalf("servers = %d, want 3", len(servers))
	}
}
