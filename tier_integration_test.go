package spongefiles_test

// Integration of the simulated sponge service with the zero-copy local
// transport tier: every wire server also listens on a per-node unix
// socket, the transport auto-selects the socket for these same-host
// peers, and (on linux) spilled chunks come back via sendfile or the
// fd-passing pread fast path. The SpongeFile API on top must not be
// able to tell the difference — same data, same bookkeeping.

import (
	"bytes"
	"os"
	"testing"

	"spongefiles/internal/cluster"
	"spongefiles/internal/media"
	"spongefiles/internal/obs"
	"spongefiles/internal/simtime"
	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

// tierStack mirrors wireStack, but its servers carry the full local
// tier: unix sockets in one shared directory plus a spill file each, so
// overflow past the tiny server pools lands on disk and reads exercise
// the zero-copy serve path.
type tierStack struct {
	sim     *simtime.Sim
	c       *cluster.Cluster
	svc     *sponge.Service
	servers map[int]*wire.Server
	tr      *wire.Transport
}

func newTierStack(t *testing.T, chunksPerServer int) *tierStack {
	t.Helper()
	sockDir, err := os.MkdirTemp("", "sp")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(sockDir) })

	cfg := cluster.PaperConfig()
	cfg.Workers = 4
	cfg.SpongeMemory = 2 * media.MB
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	scfg := sponge.DefaultConfig()
	scfg.LocalDiskEnabled = false
	svc := sponge.Start(c, scfg)

	s := &tierStack{sim: sim, c: c, svc: svc, servers: make(map[int]*wire.Server)}
	addrs := make(map[int]string)
	for n := 1; n <= 3; n++ {
		pool := sponge.NewPool(svc.ChunkReal(), chunksPerServer)
		srv, err := wire.ServeOptions(pool, "127.0.0.1:0", wire.Options{
			LocalSocketDir: sockDir,
			SpillDir:       t.TempDir(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		s.servers[n] = srv
		addrs[n] = srv.Addr()
	}
	s.tr = wire.NewTransportOptions(addrs, svc.Transport(), wire.TransportOptions{
		SocketDir: sockDir,
	})
	t.Cleanup(func() { s.tr.Close() })
	svc.SetTransport(s.tr)
	return s
}

func (s *tierStack) tierCount(t *testing.T, tier string) int64 {
	t.Helper()
	samples, err := obs.ParseText(s.tr.Metrics().Text())
	if err != nil {
		t.Fatal(err)
	}
	return samples[`sponge_transport_tier_total{tier="`+tier+`"}`]
}

// TestTierIntegrationUnixRoundTrip drives a SpongeFile create → write →
// read → delete where every remote chunk crosses a unix socket instead
// of TCP, spilling past the tiny server pools into the servers' disk
// tier, and verifies the data survives and every wire operation rode
// the unix tier.
func TestTierIntegrationUnixRoundTrip(t *testing.T) {
	s := newTierStack(t, 2) // 2 chunks of pool per server: most chunks spill to disk
	chunk := s.svc.ChunkReal()
	data := make([]byte, 18*chunk+chunk/3)
	for i := range data {
		data[i] = byte(i*31 + 7)
	}

	s.sim.Spawn("task", func(p *simtime.Proc) {
		agent := s.svc.NewAgent(s.c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "tier-it")
		if err := f.Write(p, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		got := make([]byte, 0, len(data))
		buf := make([]byte, chunk)
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Error("read-back corrupt across the unix tier")
		}
		f.Delete(p)
	})
	s.sim.MustRun()

	if n := s.tierCount(t, "unix"); n == 0 {
		t.Error("no operations took the unix tier")
	}
	if n := s.tierCount(t, "tcp"); n != 0 {
		t.Errorf("%d operations leaked onto TCP despite live sockets", n)
	}

	// The tiny pools forced overflow: some chunks really lived in the
	// spill files and were served back zero-copy (or via the portable
	// fallback off-linux). Delete then freed everything.
	var spillAllocs int64
	for n, srv := range s.servers {
		samples, err := obs.ParseText(srv.Metrics().Text())
		if err != nil {
			t.Fatal(err)
		}
		listen := `{listen="` + srv.Addr() + `"}`
		spillAllocs += samples["spongewire_spill_allocs_total"+listen]
		if live := samples["spongewire_spill_chunks"+listen]; live != 0 {
			t.Errorf("server %d: %d spill chunks leaked", n, live)
		}
	}
	if spillAllocs == 0 {
		t.Error("no chunk overflowed into the disk tier; the stack under-fills its pools")
	}
	if out := s.svc.BufPoolStats().Outstanding(); out != 0 {
		t.Errorf("%d service buffers leaked", out)
	}
}

// TestTierIntegrationPoolFDNoPayloadOnSocket drives a SpongeFile round
// trip where every remote chunk stays pool-resident (ample pools, no
// spill tier) over same-host unix sockets. With the pool descriptors
// passed at dial time, the clients pread every chunk straight from the
// mapped segments: the servers must see only pool_loc exchanges — not a
// single OpRead — proving the payloads never crossed the socket.
func TestTierIntegrationPoolFDNoPayloadOnSocket(t *testing.T) {
	sockDir, err := os.MkdirTemp("", "sp")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(sockDir) })

	cfg := cluster.PaperConfig()
	cfg.Workers = 4
	cfg.SpongeMemory = 2 * media.MB
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	scfg := sponge.DefaultConfig()
	scfg.LocalDiskEnabled = false
	svc := sponge.Start(c, scfg)

	servers := make(map[int]*wire.Server)
	addrs := make(map[int]string)
	for n := 1; n <= 3; n++ {
		pool := sponge.NewPool(svc.ChunkReal(), 32) // ample: nothing spills
		srv, err := wire.ServeOptions(pool, "127.0.0.1:0", wire.Options{
			LocalSocketDir: sockDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		servers[n] = srv
		addrs[n] = srv.Addr()
	}
	tr := wire.NewTransportOptions(addrs, svc.Transport(), wire.TransportOptions{
		SocketDir: sockDir,
	})
	t.Cleanup(func() { tr.Close() })
	svc.SetTransport(tr)

	chunk := svc.ChunkReal()
	data := make([]byte, 9*chunk+chunk/2)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}
	sim.Spawn("task", func(p *simtime.Proc) {
		agent := svc.NewAgent(c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "poolfd-it")
		if err := f.Write(p, data); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		got := make([]byte, 0, len(data))
		buf := make([]byte, chunk)
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Error("read-back corrupt across the pool-fd tier")
		}
		f.Delete(p)
	})
	sim.MustRun()

	samples, err := obs.ParseText(tr.Metrics().Text())
	if err != nil {
		t.Fatal(err)
	}
	if n := samples[`sponge_transport_tier_total{tier="tcp"}`]; n != 0 {
		t.Errorf("%d operations leaked onto TCP despite live sockets", n)
	}
	if samples[`sponge_transport_tier_total{tier="unix"}`] == 0 {
		t.Fatal("no operations took the unix tier")
	}
	if samples[`sponge_transport_tier_total{tier="pool_fd"}`] == 0 {
		// Portable build, or a host whose pool cannot be file-backed:
		// the reads were still correct, just served over the socket.
		t.Skip("pool-fd fast path unavailable on this host")
	}
	if n := samples[`sponge_poolfd_gen_miss_total`]; n != 0 {
		t.Errorf("%d generation misses in an uncontended run, want 0", n)
	}
	// Placement may favour one remote node, so pool_loc traffic is
	// asserted in aggregate; OpRead must be absent on every server.
	var locs int64
	for n, srv := range servers {
		ss, err := obs.ParseText(srv.Metrics().Text())
		if err != nil {
			t.Fatal(err)
		}
		labels := `{listen="` + srv.Addr() + `",op="`
		if reads := ss["spongewire_requests_total"+labels+`read"}`]; reads != 0 {
			t.Errorf("server %d answered %d OpReads; pool payloads crossed the socket", n, reads)
		}
		locs += ss["spongewire_requests_total"+labels+`pool_loc"}`]
	}
	if locs == 0 {
		t.Error("no server saw a pool_loc exchange despite pool-fd preads")
	}
}
