#!/bin/sh
# Observability smoke test: boot a 3-node TCP sponge cluster (three
# `spongectl serve` daemons with HTTP metrics sidecars), scrape each
# node once over both paths — the wire protocol's OpMetrics and the
# sidecar's /metrics — and grep known counters out of the expositions.
# Exercises the exact surface `spongectl stats` gives operators.
set -e
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
bin="$workdir/spongectl"
pids=""
cleanup() {
	for pid in $pids; do
		kill "$pid" 2>/dev/null || true
	done
	rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== build spongectl =="
go build -o "$bin" ./cmd/spongectl

# Boot the cluster on kernel-assigned ports; each daemon prints its
# wire address and sidecar URL on the first two lines of its log.
for n in 1 2 3; do
	"$bin" serve -addr 127.0.0.1:0 -chunk 65536 -chunks 16 \
		-metrics-addr 127.0.0.1:0 >"$workdir/node$n.log" 2>&1 &
	pids="$pids $!"
done

addrs=""
urls=""
for n in 1 2 3; do
	for _ in $(seq 1 50); do
		grep -q '^metrics on ' "$workdir/node$n.log" 2>/dev/null && break
		sleep 0.1
	done
	addr=$(awk '/^sponge server on /{sub(/:$/, "", $4); print $4; exit}' "$workdir/node$n.log")
	url=$(awk '/^metrics on /{print $3; exit}' "$workdir/node$n.log")
	if [ -z "$addr" ] || [ -z "$url" ]; then
		echo "node $n never came up:" >&2
		cat "$workdir/node$n.log" >&2
		exit 1
	fi
	addrs="$addrs,$addr"
	urls="$urls,$url"
done
addrs=${addrs#,}
urls=${urls#,}
echo "cluster up: wire $addrs"

echo "== scrape over the wire protocol (OpMetrics) =="
"$bin" stats -addrs "$addrs" -raw | grep -q 'spongewire_pool_chunks' \
	|| { echo "wire scrape missing spongewire_pool_chunks" >&2; exit 1; }

echo "== scrape over HTTP (/metrics sidecar) =="
# The wire scrape above was itself counted, so the request counter must
# now be present with op="metrics".
"$bin" stats -urls "$urls" -raw | grep -q 'spongewire_requests_total{.*op="metrics"} 1' \
	|| { echo "HTTP scrape missing counted metrics request" >&2; exit 1; }

echo "== aggregated per-node table =="
"$bin" stats -addrs "$addrs" -prefix spongewire_ | grep -q 'TOTAL' \
	|| { echo "stats table missing TOTAL column" >&2; exit 1; }

echo "stats-smoke OK"
