#!/bin/sh
# Macro perf harness: measures the host-level cost (wall-clock, allocs/op,
# bytes/op) of one run of each paper job and emits BENCH_macro.json.
#
# Both sides of the before/after live in one binary: the harness runs each
# job under the seed's legacy allocation machinery (boxed simulator
# events, a fresh goroutine per process, a fresh buffer per chunk) and
# under the pooled hot path, in the same process. Environment knobs:
#
#   BENCH_SIZE=0.05   dataset scale factor
#   BENCH_WORKERS=8   cluster size
#   BENCH_OUT=BENCH_macro.json   report path ("-" = stdout only)
set -e
cd "$(dirname "$0")/.."

SIZE="${BENCH_SIZE:-0.05}"
WORKERS="${BENCH_WORKERS:-8}"
OUT="${BENCH_OUT:-BENCH_macro.json}"

if [ "$OUT" = "-" ]; then
	go run ./cmd/benchtab -perfsize "$SIZE" -workers "$WORKERS" perf
else
	go run ./cmd/benchtab -perfsize "$SIZE" -workers "$WORKERS" -out "$OUT" perf
fi
