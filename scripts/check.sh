#!/bin/sh
# Tier-2 checks: static analysis plus race-detector runs over the
# concurrent hot paths (the wire protocol's demux/dispatch and the spill
# targets). Run on every PR alongside the tier-1 build-and-test.
set -e
cd "$(dirname "$0")/.."

echo "== go build ./... =="
go build ./...

echo "== GOOS=darwin go build ./... (portable fallback must compile) =="
# The zero-copy serve path (sendfile, SCM_RIGHTS fd passing) is linux-only
# behind build tags; the darwin cross-compile proves the portable
# buffered fallback keeps every package building off-linux.
GOOS=darwin go build ./...

echo "== go vet ./... =="
go vet ./...

echo "== go test -race ./internal/sponge/... ./internal/spill/... =="
go test -race -count=1 ./internal/sponge/... ./internal/spill/...

echo "== allocation-regression guards =="
# The hot-path guards must hold: O(1) pool alloc/free and steady-state
# File.Write and windowed File.Read at zero allocations, plus the >=30%
# macro allocs/op cut. The obs guards keep counter/gauge/histogram ops
# and trace-ring appends allocation-free so instrumentation stays off
# the spill path's alloc budget. The mapreduce guards pin the map-side
# combiner scratch and the node-combine publish path at zero steady-
# state allocations per record.
go test -count=1 -run 'AllocationFree|TestMacroAllocRegressionGuard' \
	./internal/sponge ./internal/simtime ./internal/bench ./internal/obs \
	./internal/mapreduce

# Wire transport guard: steady-state ReadInto must stay 0 allocs/chunk
# on all six serve paths — TCP and unix pool reads, sendfile spill
# serves (the portable buffered path off-linux), and the fd-passing
# pread fast paths for both the spill file and the memfd pool segments.
# The server runs in-process, so the guard sees its side too.
go test -count=1 -run 'TestWireReadSteadyStateAllocationFree' \
	./internal/sponge/wire

echo "== readahead sweep smoke + depth-1 seed equivalence =="
# One tiny depth-sweep iteration over both transports, and the pinned
# bit-exact check that ReadAheadDepth=1 reproduces the seed prefetcher.
go test -count=1 -run 'TestReadAheadSweepSmoke|TestReadAheadDepth1MatchesSeedPrefetcher' \
	./internal/bench

echo "== tracker dissemination smoke =="
# Small-N run of the tracker scale sweep: delta dissemination must cost
# fewer tracker messages than full polling and grow sublinearly with the
# cluster, plus the deterministic-replay check on one delta cell.
go test -count=1 -run 'TestTrackerSweep' ./internal/bench

echo "== node-combine shape + determinism smoke =="
# Small-N node-combine checks: the shared per-node buffer must cut the
# shuffle >=25% versus per-task combining with the answer preserved, and
# the node-combined reduce output must stay byte-identical to the
# task-combined run's.
go test -count=1 -run 'TestNodeCombineCutsShuffleAndPreservesAnswer|TestNodeCombineDeterministicOutput' \
	./internal/mapreduce

echo "== scenario matrix smoke (quick cases) =="
# The two quick seed scenarios — a digest-verified spill round trip and
# the delta-dissemination convergence case — run against real child
# server processes, end to end through the spongesim runner.
go run ./cmd/spongesim -run 'spill-roundtrip-clean|delta-convergence' -report /tmp/scenario-smoke.json

echo "tier2 OK"
