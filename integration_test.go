package spongefiles_test

// Integration scenarios across the whole stack: Pig Latin scripts
// compiled onto the MapReduce engine spilling through SpongeFiles,
// machine failures during contended jobs, and garbage collection
// cleaning up after dead tasks.

import (
	"fmt"
	"testing"

	"spongefiles/internal/cluster"
	"spongefiles/internal/dfs"
	"spongefiles/internal/failure"
	"spongefiles/internal/mapreduce"
	"spongefiles/internal/media"
	"spongefiles/internal/pig"
	"spongefiles/internal/simtime"
	"spongefiles/internal/spill"
	"spongefiles/internal/sponge"
	"spongefiles/internal/workload"
)

type stack struct {
	sim *simtime.Sim
	c   *cluster.Cluster
	fs  *dfs.DFS
	eng *mapreduce.Engine
	svc *sponge.Service
}

func newStack(workers int, spongeMB int64) *stack {
	cfg := cluster.PaperConfig()
	cfg.Workers = workers
	cfg.SpongeMemory = spongeMB * media.MB
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	fs := dfs.New(c)
	scfg := sponge.DefaultConfig()
	scfg.Remote = dfs.NewSpillStore(fs)
	return &stack{
		sim: sim, c: c, fs: fs,
		eng: mapreduce.NewEngine(c, fs),
		svc: sponge.Start(c, scfg),
	}
}

// webInput registers a scaled-down web corpus and returns its input.
func (s *stack) webInput(totalVirtual int64) mapreduce.Input {
	w := workload.DefaultWebCorpus(s.c.Cfg.Scale)
	w.TotalVirtual = totalVirtual
	s.fs.AddExisting("/in/web", w.TotalVirtual)
	return w.Input("/in/web", len(s.fs.Lookup("/in/web").Blocks))
}

// TestPigLatinScriptEndToEnd runs the paper's spam-quantiles query from
// its Pig Latin source through parse → plan → compile → MapReduce with
// SpongeFile spilling, and checks the output's shape.
func TestPigLatinScriptEndToEnd(t *testing.T) {
	const src = `
pages = LOAD 'web' AS (url, domain, language, spam, terms, meta);
grps  = GROUP pages BY domain;
quant = FOREACH grps GENERATE group, QUANTILES(spam, 4);
STORE quant INTO 'spam-quantiles';
`
	script, err := pig.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	q, input, err := script.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if input != "web" {
		t.Fatalf("input = %q", input)
	}

	s := newStack(6, 1024)
	q.Input = s.webInput(512 * media.MB)
	conf := q.Compile(s.c.Cfg.TaskHeap, spill.SpongeFactory(s.svc))
	conf.NumReducers = 6

	out := map[string][]pig.Tuple{}
	inner := conf.Reduce
	conf.Reduce = func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
		inner(ctx, key, vals, func(k, v []byte) {
			out[string(k)] = append(out[string(k)], pig.DecodeTuple(v))
			emit(k, v)
		})
	}
	var res *mapreduce.JobResult
	s.sim.Spawn("driver", func(p *simtime.Proc) {
		res = s.eng.Submit(conf).Wait(p)
	})
	s.sim.MustRun()
	if res.Failed {
		t.Fatal("scripted job failed")
	}
	if len(out) < 50 {
		t.Fatalf("only %d domains produced quantiles", len(out))
	}
	rows := out["domain000.com"]
	if len(rows) != 5 {
		t.Fatalf("dominant domain quantiles = %d, want 5", len(rows))
	}
	prev := -1.0
	for _, r := range rows {
		if v := r.Float(1); v < prev {
			t.Fatal("quantiles not monotone")
		} else {
			prev = v
		}
	}
}

// TestFailureDuringContendedJob kills a node while the median job runs
// against a background grep: the job must still complete correctly.
func TestFailureDuringContendedJob(t *testing.T) {
	s := newStack(6, 512)
	nums := workload.DefaultNumbers(s.c.Cfg.Scale)
	nums.TotalVirtual = media.GB
	s.fs.AddExisting("/in/numbers", nums.TotalVirtual)
	s.fs.AddExisting("/in/grep", 20*media.GB)
	total := nums.Records()

	var crossed bool
	var seen int64
	conf := mapreduce.JobConf{
		Name:        "median",
		Input:       nums.Input("/in/numbers", len(s.fs.Lookup("/in/numbers").Blocks)),
		NumReducers: 1,
		Map: func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {
			emit(v[:8], v[8:])
		},
		Reduce: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
			for {
				if _, ok := vals.Next(); !ok {
					break
				}
				seen++
				if seen == total/2 {
					crossed = true
				}
			}
		},
		SpillFactory: spill.SpongeFactory(s.svc),
	}
	grep := mapreduce.JobConf{
		Name:  "grep",
		Input: mapreduce.Input{File: "/in/grep"},
		Map:   func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {},
	}
	failure.InjectNodeFailure(s.svc, s.eng, 4, 40*simtime.Second)

	var res *mapreduce.JobResult
	s.sim.Spawn("driver", func(p *simtime.Proc) {
		main := s.eng.Submit(conf)
		bg := s.eng.Submit(grep)
		res = main.Wait(p)
		bg.Cancel()
		bg.Wait(p)
	})
	s.sim.MustRun()
	if res.Failed {
		t.Fatal("job failed despite restart machinery")
	}
	if !crossed {
		t.Fatal("median position never reached: records lost")
	}
	for _, tr := range res.Tasks {
		if tr.Err == nil && tr.Node == 4 && tr.End.Sub(0) > 40*simtime.Second && tr.Start.Seconds() > 40 {
			t.Fatal("task scheduled on the dead node after the failure")
		}
	}
}

// TestGCReclaimsAfterJobTasksExit verifies that a full job's sponge
// usage returns to zero: tasks delete spills, agents unregister, and GC
// mops up anything left.
func TestGCReclaimsAfterJobTasksExit(t *testing.T) {
	s := newStack(4, 256)
	nums := workload.DefaultNumbers(s.c.Cfg.Scale)
	nums.TotalVirtual = 512 * media.MB
	s.fs.AddExisting("/in/numbers", nums.TotalVirtual)
	conf := mapreduce.JobConf{
		Name:        "sort",
		Input:       nums.Input("/in/numbers", len(s.fs.Lookup("/in/numbers").Blocks)),
		NumReducers: 2,
		Map: func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {
			emit(v[:8], v[8:])
		},
		Reduce: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
			for {
				if _, ok := vals.Next(); !ok {
					break
				}
			}
		},
		SpillFactory: spill.SpongeFactory(s.svc),
	}
	totalChunks := s.svc.TotalFreeChunks()
	s.sim.Spawn("driver", func(p *simtime.Proc) {
		res := s.eng.Submit(conf).Wait(p)
		if res.Failed {
			t.Error("job failed")
		}
		p.Sleep(2 * s.svcGC()) // let GC run
		if free := s.svc.TotalFreeChunks(); free != totalChunks {
			t.Errorf("sponge chunks leaked: %d of %d free", free, totalChunks)
		}
	})
	s.sim.MustRun()
}

func (s *stack) svcGC() simtime.Duration { return s.svc.Config.GCInterval }

// TestManyConcurrentJobs runs several small jobs simultaneously through
// one sponge service and checks isolation: every job completes and no
// chunk leaks.
func TestManyConcurrentJobs(t *testing.T) {
	s := newStack(6, 256)
	totalChunks := s.svc.TotalFreeChunks()
	const jobs = 4
	for j := 0; j < jobs; j++ {
		name := fmt.Sprintf("/in/n%d", j)
		s.fs.AddExisting(name, 256*media.MB)
	}
	var results [jobs]*mapreduce.JobResult
	s.sim.Spawn("driver", func(p *simtime.Proc) {
		var handles []*mapreduce.Job
		for j := 0; j < jobs; j++ {
			j := j
			nums := workload.DefaultNumbers(s.c.Cfg.Scale)
			nums.TotalVirtual = 256 * media.MB
			nums.Seed = int64(j)
			conf := mapreduce.JobConf{
				Name:        fmt.Sprintf("job%d", j),
				Input:       nums.Input(fmt.Sprintf("/in/n%d", j), len(s.fs.Lookup(fmt.Sprintf("/in/n%d", j)).Blocks)),
				NumReducers: 1,
				Map: func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {
					emit(v[:8], nil)
				},
				Reduce: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
					for {
						if _, ok := vals.Next(); !ok {
							break
						}
					}
				},
				SpillFactory: spill.SpongeFactory(s.svc),
			}
			handles = append(handles, s.eng.Submit(conf))
		}
		for j, h := range handles {
			results[j] = h.Wait(p)
		}
	})
	s.sim.MustRun()
	for j, r := range results {
		if r == nil || r.Failed {
			t.Fatalf("job %d failed", j)
		}
	}
	if free := s.svc.TotalFreeChunks(); free != totalChunks {
		t.Fatalf("chunks leaked across jobs: %d of %d", free, totalChunks)
	}
}
