// Spongesim runs the scenario matrix: named suites of
// topology × fault schedule × workload cases driven against real
// multi-process sponge clusters, with assertions evaluated over
// scraped metrics and a machine-readable JSON report for CI.
//
// Usage:
//
//	spongesim -list
//	spongesim -run all [-report report.json] [-v]
//	spongesim -run 'tracker|partition' -quick
//	spongesim serve [flags]          (internal: child server mode)
//
// -run selects cases by regular expression ("all" runs everything);
// -quick restricts to the fast smoke subset; -report writes the JSON
// suite report; -v forwards the child servers' stderr. The exit status
// is 0 only when every selected case passed. The serve subcommand is
// how the harness re-executes this binary as the per-node sponge
// servers — the same serve spongectl exposes.
package main

import (
	"flag"
	"fmt"
	"os"
	"regexp"

	"spongefiles/internal/scenario"
)

func main() {
	// Harness child mode: the scenario runner re-executes this binary
	// with "serve" as the per-node sponge server.
	if len(os.Args) > 1 && os.Args[1] == "serve" {
		scenario.ServeCmd(os.Args[2:])
		return
	}

	fs := flag.NewFlagSet("spongesim", flag.ExitOnError)
	list := fs.Bool("list", false, "list the scenario cases and exit")
	run := fs.String("run", "", `regexp of case names to run ("all" = every case)`)
	quick := fs.Bool("quick", false, "run only the quick smoke cases")
	report := fs.String("report", "", "write the JSON suite report to this path")
	verbose := fs.Bool("v", false, "forward child server stderr")
	fs.Parse(os.Args[1:])

	suite := scenario.SeedSuite()
	if *list {
		for _, cs := range suite.Cases {
			quickMark := " "
			if cs.Quick {
				quickMark = "q"
			}
			fmt.Printf("%s %-28s %s\n", quickMark, cs.Name, cs.Desc)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "usage: spongesim -list | spongesim -run <regexp>|all [-quick] [-report out.json] [-v]")
		os.Exit(2)
	}
	opts := scenario.RunOptions{
		QuickOnly: *quick,
		Logf: func(format string, args ...any) {
			fmt.Printf(format, args...)
		},
	}
	if *run != "all" {
		re, err := regexp.Compile(*run)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad -run pattern: %v\n", err)
			os.Exit(2)
		}
		opts.Filter = re
	}
	if *verbose {
		opts.Stderr = os.Stderr
	}

	rep := scenario.RunSuite(suite, opts)
	fmt.Println()
	rep.Summarize(os.Stdout)
	if *report != "" {
		if err := rep.WriteFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", *report)
	}
	if !rep.OK() {
		if rep.Passed == 0 && rep.Failed == 0 {
			fmt.Fprintln(os.Stderr, "no cases matched")
		}
		os.Exit(1)
	}
}
