// Pigrun executes a Pig Latin script (the subset of §2.1: LOAD, FILTER,
// FOREACH, GROUP BY, holistic UDFs, STORE) on a simulated cluster,
// spilling through disk or SpongeFiles, and prints each group's output
// tuples along with the job's runtime and straggler statistics.
//
// The LOAD name 'web' resolves to the synthetic web corpus of §4.2.1.
//
//	pigrun [-sponge] [-size 0.1] [-workers 8] [-reducers N] script.pig
//	echo "..." | pigrun -            # read the script from stdin
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"spongefiles/internal/bench"
	"spongefiles/internal/cluster"
	"spongefiles/internal/dfs"
	"spongefiles/internal/mapreduce"
	"spongefiles/internal/pig"
	"spongefiles/internal/simtime"
	"spongefiles/internal/spill"
	"spongefiles/internal/sponge"
	"spongefiles/internal/workload"
)

func main() {
	useSponge := flag.Bool("sponge", true, "spill to SpongeFiles (false = stock disk)")
	size := flag.Float64("size", 0.1, "dataset scale (1.0 = the paper's 10 GB corpus)")
	workers := flag.Int("workers", 8, "worker nodes")
	reducers := flag.Int("reducers", 0, "reduce tasks (0 = one per worker)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: pigrun [flags] script.pig | -")
		os.Exit(2)
	}

	src, err := readScript(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	script, err := pig.Parse(src)
	if err != nil {
		fatal(err)
	}
	q, input, err := script.Plan()
	if err != nil {
		fatal(err)
	}
	if input != "web" {
		fatal(fmt.Errorf("pigrun: only the 'web' dataset is available, script loads %q", input))
	}

	cfg := cluster.PaperConfig()
	cfg.Workers = *workers
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	fs := dfs.New(c)
	eng := mapreduce.NewEngine(c, fs)
	scfg := sponge.DefaultConfig()
	scfg.Remote = dfs.NewSpillStore(fs)
	svc := sponge.Start(c, scfg)

	w := workload.DefaultWebCorpus(c.Cfg.Scale)
	w.TotalVirtual = int64(float64(w.TotalVirtual) * *size)
	fs.AddExisting("/in/web", w.TotalVirtual)
	q.Input = w.Input("/in/web", len(fs.Lookup("/in/web").Blocks))

	factory := spill.DiskFactory()
	mode := "disk"
	if *useSponge {
		factory = spill.SpongeFactory(svc)
		mode = "SpongeFiles"
	}
	conf := q.Compile(cfg.TaskHeap, factory)
	if *reducers > 0 {
		conf.NumReducers = *reducers
	} else {
		conf.NumReducers = *workers
	}

	out := map[string][]pig.Tuple{}
	inner := conf.Reduce
	conf.Reduce = func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
		inner(ctx, key, vals, func(k, v []byte) {
			out[string(k)] = append(out[string(k)], pig.DecodeTuple(v))
			emit(k, v)
		})
	}
	var res *mapreduce.JobResult
	sim.Spawn("driver", func(p *simtime.Proc) {
		res = eng.Submit(conf).Wait(p)
	})
	if _, err := sim.Run(); err != nil {
		fatal(err)
	}
	if res.Failed {
		fatal(fmt.Errorf("pigrun: job failed"))
	}

	fmt.Printf("%s: %.1f s with %s spilling (%d groups)\n",
		q.Name, res.Duration().Seconds(), mode, len(out))
	if st := res.Straggler(); st != nil {
		fmt.Printf("straggler: input %s, spilled %s in %d chunks\n\n",
			bench.HumanBytes(float64(st.InputVirtual)),
			bench.HumanBytes(float64(st.Spill.BytesReal*c.Cfg.Scale)),
			st.Spill.Chunks)
	}
	groups := make([]string, 0, len(out))
	for g := range out {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		fmt.Printf("%s:\n", g)
		for _, tu := range out[g] {
			fmt.Printf("  %v\n", []pig.Value(tu))
		}
	}
}

func readScript(arg string) (string, error) {
	if arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
