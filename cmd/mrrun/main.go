// Mrrun executes one of the paper's macro jobs on a simulated cluster
// and reports the runtime and straggler statistics.
//
// Usage:
//
//	mrrun -job median|anchortext|spam [-mem GB] [-sponge] [-spongemem GB]
//	      [-contend] [-noremote] [-nospill] [-size f] [-workers n]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
)

func main() {
	job := flag.String("job", "median", "median | anchortext | spam")
	counters := flag.Bool("counters", false, "print aggregated job counters")
	mem := flag.Int64("mem", 16, "node memory in GB")
	sponge := flag.Bool("sponge", false, "spill to SpongeFiles instead of disk")
	spongeMem := flag.Int64("spongemem", 1, "sponge memory per node in GB")
	contend := flag.Bool("contend", false, "run the background 1 TB grep job")
	noremote := flag.Bool("noremote", false, "disable remote sponge memory")
	nospill := flag.Bool("nospill", false, "huge heap, no spilling (optimal baseline)")
	size := flag.Float64("size", 1.0, "dataset scale factor")
	workers := flag.Int("workers", 0, "worker nodes (default 29)")
	flag.Parse()

	var kind bench.JobKind
	switch *job {
	case "median":
		kind = bench.Median
	case "anchortext":
		kind = bench.Anchortext
	case "spam":
		kind = bench.SpamQuantiles
	default:
		fmt.Fprintf(os.Stderr, "unknown job %q\n", *job)
		os.Exit(2)
	}
	res := bench.RunMacro(kind, bench.MacroConfig{
		NodeMemory:     *mem * media.GB,
		Sponge:         *sponge,
		SpongeMemory:   *spongeMem * media.GB,
		RemoteDisabled: *noremote,
		NoSpill:        *nospill,
		Contention:     *contend,
		SizeFactor:     *size,
		Workers:        *workers,
	})
	fmt.Printf("job:                %s\n", res.Kind)
	fmt.Printf("runtime:            %.1f s\n", res.Runtime.Seconds())
	fmt.Printf("straggler input:    %s\n", bench.HumanBytes(float64(res.StragglerInput)))
	fmt.Printf("straggler spilled:  %s in %d chunks\n",
		bench.HumanBytes(float64(res.StragglerSpilled)), res.StragglerChunks)
	if st := res.StragglerRun; st != nil {
		fmt.Printf("straggler runtime:  %.1f s on node %d (spill files %d, merge rounds %d, machines %d)\n",
			st.Duration().Seconds(), st.Node, st.Spill.Files, st.MergeRounds, st.Spill.Machines)
		fmt.Printf("straggler chunks:   local-mem %d, remote-mem %d, local-disk %d, remote-fs %d\n",
			st.Spill.ByKind[0], st.Spill.ByKind[1], st.Spill.ByKind[2], st.Spill.ByKind[3])
	}
	d := res.StragglerDisk
	fmt.Printf("straggler disk:     read %s, wrote %s, %d seeks, absorbed %s, cache hits %s, throttle %.1f s\n",
		bench.HumanBytes(float64(d.PlatterReadBytes)), bench.HumanBytes(float64(d.PlatterWriteBytes)),
		d.Seeks, bench.HumanBytes(float64(d.AbsorbedBytes)), bench.HumanBytes(float64(d.CacheHitBytes)),
		d.ThrottleTime.Seconds())
	if kind == bench.Median {
		fmt.Printf("median value:       %.3f\n", res.MedianValue)
	}
	if len(res.GrepTaskSecs) > 0 {
		med, max := bench.MedianMax(res.GrepTaskSecs)
		fmt.Printf("grep tasks:         %d done, median %.1f s, max %.1f s\n",
			len(res.GrepTaskSecs), med, max)
	}
	if *counters && res.Job != nil {
		fmt.Println("counters:")
		agg := res.Job.Counters()
		names := make([]string, 0, len(agg))
		for n := range agg {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("  %-24s %d\n", n, agg[n])
		}
	}
}
