// Spongectl runs and exercises a real sponge server over TCP (the
// production transport in internal/sponge/wire).
//
// Usage:
//
//	spongectl serve   [-addr :7070] [-chunk 1048576] [-chunks 1024]
//	                  [-inflight 16] [-read-timeout 0] [-write-timeout 0]
//	                  [-local-socket-dir /tmp] [-spill-dir /tmp]
//	                  [-spill-chunks 0] [-no-zero-copy]
//	                  [-metrics-addr 127.0.0.1:9090]
//	spongectl stat    -addr host:port
//	spongectl stats   [-addrs host:port,...] [-urls http://...,...]
//	                  [-prefix sponge_,...] [-raw]
//	spongectl demo    [-chunk 65536] [-chunks 64] [-conns 4]
//	spongectl cluster [-nodes 3] [-chunks 32] [-mb 200] [-drop 0.1]
//	                  [-readahead 4] [-local-socket-dir /tmp]
//	                  [-no-fd-pass] [-tracker-replicas 1]
//	                  [-kill-tracker 2s] [-delta] [-combine] ...
//
// "serve" runs a sponge server until interrupted; -local-socket-dir
// adds a same-host unix-socket listener, -spill-dir a disk-spill
// overflow tier served zero-copy, and -metrics-addr an HTTP sidecar
// serving the text exposition on /metrics. "stat" prints a
// server's pool state. "stats" scrapes one or more live daemons — over
// the wire protocol (-addrs) or HTTP (-urls) — and renders an
// aggregated per-node metrics table (-raw dumps each exposition
// verbatim instead). "demo" starts an in-process server, spills
// chunks through it concurrently over a pipelined connection pool,
// reads them back with zero-copy ReadInto, and prints a transcript.
// "cluster" launches one sponge-server child process per node,
// installs the wire transport on a simulated service, and drives a
// SpongeFile spill through the allocator chain so every remote chunk
// crosses real process boundaries over real TCP; -readahead sets the
// read-back window depth (up to that many chunk fetches multiplexed
// over each pipelined connection at once). With -local-socket-dir the
// children also listen on per-node unix sockets in that directory and
// the parent's transport auto-discovers the same-host tier, so chunk
// traffic skips the TCP stack; on linux the transport also pulls each
// child's spill-file and memfd pool-segment descriptors over SCM_RIGHTS
// so chunk reads become local preads whose payloads never cross the
// socket (-no-fd-pass turns both fast paths off). With -tracker-replicas
// the simulated tracker runs with warm standbys, and -kill-tracker fails
// it at the given virtual time mid-run so the watchdog's failover (and
// the handed-off snapshot it promotes) is visible in the transcript;
// -delta switches free-space dissemination from the 1/s full poll to
// server-pushed incremental updates; -combine also runs a node-combine
// wordcount (JobConf.NodeCombine) whose shared buffer is sized to
// overflow, so the combined runs spill through the sponge and across
// the child servers, and prints the mr_node_combine_* counters in the
// table. After the round trip it scrapes
// every child over OpMetrics and prints the per-node table (including
// the transport-tier, fd-pass, zero-copy, tracker, and membership
// counters).
package main

import (
	"encoding/binary"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"spongefiles/internal/cluster"
	"spongefiles/internal/dfs"
	"spongefiles/internal/mapreduce"
	"spongefiles/internal/media"
	"spongefiles/internal/obs"
	"spongefiles/internal/scenario"
	"spongefiles/internal/simtime"
	"spongefiles/internal/spill"
	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "stats":
		statsCmd(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	case "cluster":
		clusterMain(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spongectl serve|stat|stats|demo|cluster [flags]")
	os.Exit(2)
}

// serve runs one sponge server until interrupted. The implementation
// lives in internal/scenario so the scenario harness can re-execute any
// hosting binary (spongectl, spongesim, test binaries) as its child
// servers.
func serve(args []string) {
	scenario.ServeCmd(args)
}

// statsCmd scrapes live daemons and renders the aggregated table. Wire
// endpoints (-addrs) hit any sponge server or TCP-served tracker via
// OpMetrics; HTTP endpoints (-urls) hit a serve sidecar's /metrics.
func statsCmd(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated daemon addresses to scrape over the wire protocol")
	urls := fs.String("urls", "", "comma-separated HTTP exposition URLs to scrape")
	prefix := fs.String("prefix", "", "comma-separated metric-name prefixes to keep (empty = all)")
	raw := fs.Bool("raw", false, "dump each endpoint's raw exposition instead of the table")
	fs.Parse(args)

	type scrape struct{ name, text string }
	var scrapes []scrape
	for _, addr := range splitList(*addrs) {
		c, err := wire.Dial(addr)
		if err != nil {
			fatal(fmt.Errorf("scrape %s: %w", addr, err))
		}
		text, err := c.Metrics()
		c.Close()
		if err != nil {
			fatal(fmt.Errorf("scrape %s: %w", addr, err))
		}
		scrapes = append(scrapes, scrape{addr, text})
	}
	for _, url := range splitList(*urls) {
		resp, err := http.Get(url)
		if err != nil {
			fatal(fmt.Errorf("scrape %s: %w", url, err))
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			fatal(fmt.Errorf("scrape %s: %w", url, err))
		}
		if resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("scrape %s: HTTP %d", url, resp.StatusCode))
		}
		scrapes = append(scrapes, scrape{url, string(body)})
	}
	if len(scrapes) == 0 {
		fatal(fmt.Errorf("stats: nothing to scrape; pass -addrs and/or -urls"))
	}
	if *raw {
		for _, s := range scrapes {
			fmt.Printf("== %s ==\n%s", s.name, s.text)
		}
		return
	}
	nodes := make([]obs.NodeSamples, 0, len(scrapes))
	for _, s := range scrapes {
		samples, err := obs.ParseText(s.text)
		if err != nil {
			fatal(fmt.Errorf("parse %s: %w", s.name, err))
		}
		nodes = append(nodes, obs.NodeSamples{Name: s.name, Samples: samples})
	}
	if err := obs.RenderNodeTable(os.Stdout, nodes, splitList(*prefix)...); err != nil {
		fatal(err)
	}
}

// splitList parses a comma-separated flag value, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, item := range strings.Split(s, ",") {
		if item = strings.TrimSpace(item); item != "" {
			out = append(out, item)
		}
	}
	return out
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	fs.Parse(args)

	c, err := wire.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	free, total, size, err := c.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d/%d chunks free, chunk size %d bytes\n", *addr, free, total, size)
}

// clusterMain is the real multi-process mode: it re-executes this
// binary once per node as "spongectl serve -addr 127.0.0.1:0", collects
// the childrens' listen addresses, maps them into a wire transport on a
// simulated sponge service, and runs a SpongeFile round trip whose
// local pool is too small to hold the data — forcing the allocator
// chain through the tracker and across the TCP servers. With -drop > 0
// a fault-injecting wrapper loses that fraction of exchanges, so the
// retry and blacklist paths run against live sockets too.
func clusterMain(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	nodes := fs.Int("nodes", 3, "sponge server child processes")
	chunks := fs.Int("chunks", 32, "pool chunks per child server")
	mb := fs.Int64("mb", 64, "virtual MB to spill through the cluster")
	drop := fs.Float64("drop", 0, "fault-injected exchange drop rate")
	seed := fs.Int64("seed", 1, "fault stream seed")
	readahead := fs.Int("readahead", 0, "readahead window depth (0 = service default, 1 = seed-compatible single slot)")
	noFDPass := fs.Bool("no-fd-pass", false, "do not arm the SCM_RIGHTS fd-passing fast paths (spill-file and pool-segment preads) on same-host unix connections")
	trackerReplicas := fs.Int("tracker-replicas", 0, "warm standby trackers shadowing the leader (0 = standalone)")
	killTracker := fs.Duration("kill-tracker", 0, "virtual time at which to fail the tracker mid-run (0 = never; pair with -tracker-replicas to watch the failover)")
	delta := fs.Bool("delta", false, "delta free-space dissemination instead of the 1/s full poll")
	combine := fs.Bool("combine", false, "also run a node-combine wordcount whose buffer overflow spills into the sponge, so combined data crosses the child servers")
	opts := scenario.ServeFlags(fs)
	fs.Parse(args)

	// The simulated half: node 0 runs the task (and the tracker); nodes
	// 1..N are fronted by the child processes. A tiny local sponge pool
	// (two chunks) forces everything else remote.
	cfg := cluster.PaperConfig()
	cfg.Workers = *nodes + 1
	cfg.SpongeMemory = 2 * media.MB
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	// Local disk stays enabled as the escape hatch: under heavy -drop
	// every remote candidate can end up blacklisted, and the demo should
	// degrade the way the paper's allocator does, not fail.
	scfg := sponge.DefaultConfig()
	scfg.ReadAheadDepth = *readahead
	scfg.TrackerReplicas = *trackerReplicas
	scfg.DeltaDissemination = *delta
	svc := sponge.Start(c, scfg)
	if *killTracker > 0 {
		// Not a daemon: the proc keeps the simulation alive past the
		// watchdog's next check, so the failover happens even when the
		// demo job itself finishes earlier in virtual time.
		sim.Spawn("trackerkiller", func(p *simtime.Proc) {
			p.Sleep(simtime.Duration(*killTracker))
			fmt.Printf("failing tracker on node%d at %v virtual\n", svc.Tracker.Node().ID, *killTracker)
			svc.FailTracker()
			p.Sleep(2 * svc.Config.PollInterval)
			fmt.Printf("watchdog outcome: tracker on node%d, leader epoch %d, %d failovers\n",
				svc.Tracker.Node().ID, svc.Tracker.LeaderEpoch(), svc.Failovers())
		})
	}

	wopts := opts()
	h, err := scenario.Spawn(scenario.HarnessOptions{
		Nodes:      *nodes,
		ChunkBytes: svc.ChunkReal(),
		Chunks:     *chunks,
		Wire:       wopts,
		Stderr:     os.Stderr,
		Logf:       func(format string, args ...any) { fmt.Printf(format, args...) },
	})
	if err != nil {
		fatal(err)
	}
	defer h.Stop()
	addrs := h.Addrs()

	var transport sponge.Transport = wire.NewTransportOptions(addrs, svc.Transport(), wire.TransportOptions{
		SocketDir: wopts.LocalSocketDir,
		Metrics:   svc.Metrics(),
		NoFDPass:  *noFDPass,
	})
	var faults *sponge.FaultTransport
	if *drop > 0 {
		faults = sponge.NewFaultTransport(transport, sponge.FaultConfig{Seed: *seed, DropRate: *drop})
		transport = faults
	}
	svc.SetTransport(transport)

	data := make([]byte, c.Cfg.R(*mb*media.MB))
	for i := range data {
		data[i] = byte(i*31 + 7)
	}
	start := time.Now()
	var stats sponge.FileStats
	failed := false
	sim.Spawn("task", func(p *simtime.Proc) {
		agent := svc.NewAgent(c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "cluster-demo")
		if err := f.Write(p, data); err != nil {
			fmt.Fprintln(os.Stderr, "write:", err)
			failed = true
			return
		}
		if err := f.Close(p); err != nil {
			fmt.Fprintln(os.Stderr, "close:", err)
			failed = true
			return
		}
		buf := make([]byte, svc.ChunkReal())
		var got int
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "read:", err)
				failed = true
				return
			}
			if n == 0 {
				break
			}
			for j := 0; j < n; j++ {
				if buf[j] != byte((got+j)*31+7) {
					fmt.Fprintf(os.Stderr, "corrupt byte at offset %d\n", got+j)
					failed = true
					return
				}
			}
			got += n
		}
		if got != len(data) {
			fmt.Fprintf(os.Stderr, "short read: %d of %d bytes\n", got, len(data))
			failed = true
			return
		}
		stats = f.Stats()
		f.Delete(p)
	})

	// The optional node-combine leg: a wordcount whose co-located map
	// tasks publish into the shared per-node combine buffer, sized so the
	// buffer overflows and the combined runs spill through the sponge —
	// every overflow chunk rides the same live TCP/unix transport as the
	// round trip above.
	var combineRes *mapreduce.JobResult
	var combineRecords int64
	if *combine {
		const (
			records = 120_000
			vocab   = 2000
			keyLen  = 6
		)
		cfs := dfs.New(c)
		cfs.BlockVirtual = 16 * media.MB // several map tasks per node
		eng := mapreduce.NewEngine(c, cfs)
		realRec := keyLen + 4 + 8 // key + uint32 value + record header
		cfs.AddExisting("/in/combine", c.Cfg.V(records*realRec))
		blocks := len(cfs.Lookup("/in/combine").Blocks)
		one := make([]byte, 4)
		binary.LittleEndian.PutUint32(one, 1)
		sum := func(vals *mapreduce.ValueIter) uint32 {
			var total uint32
			for {
				v, ok := vals.Next()
				if !ok {
					return total
				}
				total += binary.LittleEndian.Uint32(v)
			}
		}
		conf := mapreduce.JobConf{
			Name: "combine-demo",
			Input: mapreduce.Input{
				File: "/in/combine",
				MakeRecords: func(split int) mapreduce.RecordGen {
					return func(emit mapreduce.Emit) {
						per := records / blocks
						lo, hi := split*per, (split+1)*per
						if split == blocks-1 {
							hi = records
						}
						for i := lo; i < hi; i++ {
							emit(nil, []byte(fmt.Sprintf("k%05d", i%vocab)))
						}
					}
				},
			},
			Map: func(ctx *mapreduce.TaskContext, k, v []byte, emit mapreduce.Emit) {
				emit(v[:keyLen], one)
			},
			Combine: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
				var out [4]byte
				binary.LittleEndian.PutUint32(out[:], sum(vals))
				emit(key, out[:])
			},
			Reduce: func(ctx *mapreduce.TaskContext, key []byte, vals *mapreduce.ValueIter, emit mapreduce.Emit) {
				combineRecords += int64(sum(vals))
				emit(key, nil)
			},
			NumReducers:        2,
			NodeCombine:        true,
			NodeCombineVirtual: 4 * media.MB, // force overflow into the sponge
			SpillFactory:       spill.SpongeFactory(svc),
			Metrics:            svc.Metrics(),
		}
		sim.Spawn("combinejob", func(p *simtime.Proc) {
			combineRes = eng.Submit(conf).Wait(p)
		})
	}
	sim.MustRun()
	if failed {
		os.Exit(1)
	}

	fmt.Printf("round trip: %d real bytes (%d virtual MB) in %v wall clock\n",
		len(data), *mb, time.Since(start).Round(time.Millisecond))
	fmt.Printf("chunks: %d total — %d local mem, %d remote mem over the wire, %d remote FS; %d retries\n",
		stats.Chunks, stats.ByKind[sponge.LocalMem], stats.ByKind[sponge.RemoteMem],
		stats.ByKind[sponge.RemoteFS], stats.Retries)
	if tiers, err := obs.ParseText(svc.Metrics().Text()); err == nil {
		fmt.Printf("transport tiers: %d ops unix (%d pool-fd preads), %d tcp, %d sim; %d unix fallbacks, %d gen misses\n",
			tiers[`sponge_transport_tier_total{tier="unix"}`],
			tiers[`sponge_transport_tier_total{tier="pool_fd"}`],
			tiers[`sponge_transport_tier_total{tier="tcp"}`],
			tiers[`sponge_transport_tier_total{tier="sim"}`],
			tiers["sponge_transport_unix_fallback_total"],
			tiers["sponge_poolfd_gen_miss_total"])
	}
	if faults != nil {
		fs := faults.Stats()
		fmt.Printf("faults: %d exchanges, %d dropped, %d fast errors\n",
			fs.Exchanges, fs.Drops, fs.FastErrs)
	}
	polls, queries := svc.Tracker.Stats()
	fmt.Printf("tracker: node%d, leader epoch %d, %d failovers, %d polls, %d queries; membership epoch %d\n",
		svc.Tracker.Node().ID, svc.Tracker.LeaderEpoch(), svc.Failovers(), polls, queries,
		svc.MembershipEpoch())
	if *delta {
		applied, stale := svc.Tracker.DeltaStats()
		fmt.Printf("delta dissemination: %d incremental updates applied, %d stale dropped\n",
			applied, stale)
	}
	if combineRes != nil {
		if combineRes.Failed {
			fmt.Fprintln(os.Stderr, "combine job failed")
			os.Exit(1)
		}
		nc := combineRes.NodeCombine
		fmt.Printf("node combine: %d published / %d bypassed map tasks, %d -> %d records, %d bytes saved off the shuffle\n",
			nc.Published, nc.BypassedLate+nc.BypassedClosed, nc.RecordsIn, nc.RecordsOut, nc.SavedBytes())
		fmt.Printf("node combine overflow: %d overflows, %d chunks (%d real bytes) spilled through the sponge; reduce saw %d records\n",
			nc.Overflows, nc.SpillChunks, nc.SpillBytesReal, combineRecords)
	}
	for n := 1; n <= *nodes; n++ {
		cl, err := wire.Dial(addrs[n])
		if err != nil {
			continue
		}
		free, total, _, err := cl.Stat()
		cl.Close()
		if err == nil {
			fmt.Printf("node%d pool after delete: %d/%d free\n", n, free, total)
		}
	}

	// Aggregated metrics table: the task-side service registry (spill
	// outcomes, retries, readahead) next to each child's wire scrape.
	sim0, err := obs.ParseText(svc.Metrics().Text())
	if err != nil {
		fatal(err)
	}
	mnodes := []obs.NodeSamples{{Name: "sim", Samples: sim0}}
	for n := 1; n <= *nodes; n++ {
		cl, err := wire.Dial(addrs[n])
		if err != nil {
			continue
		}
		text, err := cl.Metrics()
		cl.Close()
		if err != nil {
			continue
		}
		samples, err := obs.ParseText(text)
		if err != nil {
			continue
		}
		mnodes = append(mnodes, obs.NodeSamples{Name: fmt.Sprintf("node%d", n), Samples: samples})
	}
	fmt.Println()
	if err := obs.RenderNodeTable(os.Stdout, mnodes,
		"sponge_spill", "sponge_retries", "sponge_ra_", "sponge_fault",
		"sponge_candidates", "sponge_transport_tier_total",
		"sponge_transport_unix_fallback_total", "sponge_poolfd_gen_miss_total",
		"sponge_tracker_leader_epoch", "sponge_tracker_failovers_total",
		"sponge_tracker_msgs_total", "sponge_tracker_updates_total",
		"sponge_membership_epoch", "sponge_membership_changes_total",
		"sponge_evacuated_chunks_total", "sponge_peer_revocations_total",
		"sponge_transport_peer_revocations_total", "mr_node_combine",
		"spongewire_requests_total", "spongewire_connections_total",
		"spongewire_serve_zero_copy_bytes_total", "spongewire_spill_allocs_total",
		"spongewire_fdpass_fail_total", "spongewire_tracker_",
		"spongewire_delta_"); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	chunk := fs.Int("chunk", 1<<16, "chunk size in bytes")
	chunks := fs.Int("chunks", 64, "pool chunks")
	conns := fs.Int("conns", 4, "pipelined connections in the client pool")
	fs.Parse(args)

	pool := sponge.NewPool(*chunk, *chunks)
	srv, err := wire.Serve(pool, "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("demo server on %s\n", srv.Addr())

	p, err := wire.DialPool(srv.Addr(), *conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer p.Close()
	c := p.Get()
	fmt.Printf("client pool: %d connections, protocol v%d, chunk size %d\n",
		p.Size(), c.Version(), p.ChunkSize())

	owner := sponge.TaskID{Node: 1, PID: int64(os.Getpid())}
	if err := c.Register(uint64(owner.PID)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Spill concurrently: the pipelined protocol keeps every request in
	// flight at once instead of lock-stepping round trips.
	const spills = 8
	handles := make([]int, spills)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < spills; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := make([]byte, *chunk)
			for j := range data {
				data[j] = byte(i + j)
			}
			h, err := p.AllocWrite(owner, data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	fmt.Printf("spilled %d chunks concurrently in %v -> handles %v\n",
		spills, time.Since(start), handles)

	free, total, _, _ := p.Stat()
	fmt.Printf("pool: %d/%d free\n", free, total)

	// Read back with ReadInto: one reusable buffer, zero allocations on
	// the hot path.
	buf := make([]byte, *chunk)
	for i, h := range handles {
		n, err := p.ReadInto(h, buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok := true
		for j := 0; j < n; j++ {
			if buf[j] != byte(i+j) {
				ok = false
				break
			}
		}
		fmt.Printf("read handle %d: %d bytes, intact=%v\n", h, n, ok)
		if err := p.Free(h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	free, total, _, _ = p.Stat()
	fmt.Printf("after free: %d/%d free\n", free, total)
	alive, _ := c.Ping(uint64(owner.PID))
	fmt.Printf("liveness check for pid %d: %v\n", owner.PID, alive)
}
