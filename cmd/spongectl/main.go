// Spongectl runs and exercises a real sponge server over TCP (the
// production transport in internal/sponge/wire).
//
// Usage:
//
//	spongectl serve [-addr :7070] [-chunk 1048576] [-chunks 1024]
//	spongectl stat  -addr host:port
//	spongectl demo  [-chunk 65536] [-chunks 64] [-conns 4]
//
// "serve" runs a sponge server until interrupted. "stat" prints a
// server's pool state. "demo" starts an in-process server, spills
// chunks through it concurrently over a pipelined connection pool,
// reads them back with zero-copy ReadInto, and prints a transcript.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"time"

	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		serve(os.Args[2:])
	case "stat":
		stat(os.Args[2:])
	case "demo":
		demo(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: spongectl serve|stat|demo [flags]")
	os.Exit(2)
}

func serve(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "listen address")
	chunk := fs.Int("chunk", 1<<20, "chunk size in bytes (the paper: 1 MB)")
	chunks := fs.Int("chunks", 1024, "number of chunks in the sponge pool")
	fs.Parse(args)

	pool := sponge.NewPool(*chunk, *chunks)
	srv, err := wire.Serve(pool, *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("sponge server on %s: %d chunks × %d bytes (%d MB pool)\n",
		srv.Addr(), *chunks, *chunk, *chunks**chunk>>20)
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	<-sig
	srv.Close()
}

func stat(args []string) {
	fs := flag.NewFlagSet("stat", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "server address")
	fs.Parse(args)

	c, err := wire.Dial(*addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer c.Close()
	free, total, size, err := c.Stat()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%s: %d/%d chunks free, chunk size %d bytes\n", *addr, free, total, size)
}

func demo(args []string) {
	fs := flag.NewFlagSet("demo", flag.ExitOnError)
	chunk := fs.Int("chunk", 1<<16, "chunk size in bytes")
	chunks := fs.Int("chunks", 64, "pool chunks")
	conns := fs.Int("conns", 4, "pipelined connections in the client pool")
	fs.Parse(args)

	pool := sponge.NewPool(*chunk, *chunks)
	srv, err := wire.Serve(pool, "127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("demo server on %s\n", srv.Addr())

	p, err := wire.DialPool(srv.Addr(), *conns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer p.Close()
	c := p.Get()
	fmt.Printf("client pool: %d connections, protocol v%d, chunk size %d\n",
		p.Size(), c.Version(), p.ChunkSize())

	owner := sponge.TaskID{Node: 1, PID: int64(os.Getpid())}
	if err := c.Register(uint64(owner.PID)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	// Spill concurrently: the pipelined protocol keeps every request in
	// flight at once instead of lock-stepping round trips.
	const spills = 8
	handles := make([]int, spills)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < spills; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := make([]byte, *chunk)
			for j := range data {
				data[j] = byte(i + j)
			}
			h, err := p.AllocWrite(owner, data)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			handles[i] = h
		}(i)
	}
	wg.Wait()
	fmt.Printf("spilled %d chunks concurrently in %v -> handles %v\n",
		spills, time.Since(start), handles)

	free, total, _, _ := p.Stat()
	fmt.Printf("pool: %d/%d free\n", free, total)

	// Read back with ReadInto: one reusable buffer, zero allocations on
	// the hot path.
	buf := make([]byte, *chunk)
	for i, h := range handles {
		n, err := p.ReadInto(h, buf)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ok := true
		for j := 0; j < n; j++ {
			if buf[j] != byte(i+j) {
				ok = false
				break
			}
		}
		fmt.Printf("read handle %d: %d bytes, intact=%v\n", h, n, ok)
		if err := p.Free(h); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	free, total, _, _ = p.Stat()
	fmt.Printf("after free: %d/%d free\n", free, total)
	alive, _ := c.Ping(uint64(owner.PID))
	fmt.Printf("liveness check for pid %d: %v\n", owner.PID, alive)
}
