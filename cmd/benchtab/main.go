// Benchtab regenerates the paper's tables and figures on the simulated
// cluster and prints them in the paper's layout.
//
// Usage:
//
//	benchtab [-size f] [-spills n] [tab1|tab2|fig1a|fig1b|fig4|fig5|fig6|grepvar|failtab|ablate|all]
//	benchtab [-perfsize f] [-workers n] [-out file.json] perf
//	benchtab [-out file.json] [-stats file.json] faults
//	benchtab [-out file.json] [-stats file.json] readahead
//	benchtab [-out BENCH_wire.json] tier
//	benchtab [-out BENCH_tracker.json] tracker
//	benchtab [-out BENCH_combine.json] combine
//
// -size scales the macro datasets (1.0 = the paper's 10 GB inputs).
//
// -stats threads one obs metrics registry through every cell of the
// faults or readahead experiment and writes its aggregated snapshot
// (spill outcomes, retries, fault injections, readahead hits) as JSON
// alongside the BENCH report.
//
// The perf experiment is the host-level macro benchmark: it times the
// three jobs under testing.B in both the seed-equivalent legacy
// allocation mode and the pooled hot path, and emits the comparison as
// JSON (checked in as BENCH_macro.json). It is not part of "all".
//
// The faults experiment sweeps transport drop rates over the simulated
// and the real-TCP wire transports, recording spill placement, retries,
// and timing (checked in as BENCH_faults.json). Also not part of "all".
//
// The readahead experiment sweeps the readahead window depth against
// injected per-exchange latency over both transports, measuring
// read-back throughput of a fully remote file (checked in as
// BENCH_readahead.json). Also not part of "all".
//
// The tier experiment measures the local transport tier ladder —
// steady-state 64KiB chunk reads over loopback TCP, unix sockets,
// sendfile spill serves, and the fd-passing pread fast paths (spill
// file and memfd pool segments) — and patches the measured rungs into
// the tier_ladder section of an existing BENCH_wire.json given via
// -out, leaving the protocol-benchmark sections untouched. Also not
// part of "all".
//
// The tracker experiment sweeps simulated cluster size under the
// paper's full-poll free-space dissemination and under delta
// dissemination, with identical churn, recording tracker messages per
// node per second (checked in as BENCH_tracker.json). Also not part of
// "all".
//
// The combine experiment sweeps combining scope (none, per-task,
// per-node, per-node with sponge-backed overflow) against key skew
// over a wordcount and an algebraic Pig query, recording shuffle
// volume, spill traffic, and runtime (checked in as
// BENCH_combine.json). Also not part of "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
	"spongefiles/internal/obs"
)

func main() {
	size := flag.Float64("size", 1.0, "dataset scale factor (1.0 = paper size)")
	spills := flag.Int("spills", 10000, "microbenchmark spill count")
	perfSize := flag.Float64("perfsize", 0.05, "dataset scale factor for the perf experiment")
	perfWorkers := flag.Int("workers", 8, "cluster size for the perf experiment")
	perfOut := flag.String("out", "", "write the perf experiment's JSON report to this file")
	statsOut := flag.String("stats", "", "write the experiment's metrics registry snapshot (JSON) to this file (faults, readahead)")
	flag.Parse()
	which := "all"
	if flag.NArg() > 0 {
		which = flag.Arg(0)
	}
	if which == "perf" {
		perf(*perfSize, *perfWorkers, *perfOut)
		return
	}
	if which == "faults" {
		faults(*perfOut, *statsOut)
		return
	}
	if which == "readahead" {
		readahead(*perfOut, *statsOut)
		return
	}
	if which == "tier" {
		tier(*perfOut)
		return
	}
	if which == "tracker" {
		tracker(*perfOut)
		return
	}
	if which == "combine" {
		combine(*perfOut)
		return
	}
	run := func(name string, fn func()) {
		if which == "all" || which == name {
			fn()
		}
	}
	run("tab1", func() { table1(*spills) })
	run("fig1a", fig1a)
	run("fig1b", fig1b)
	run("tab2", func() { table2(*size) })
	run("fig4", func() { figMacro("Figure 4 (no contention)", bench.Fig4(*size)) })
	run("fig5", func() { figMacro("Figure 5 (disk contention)", bench.Fig5(*size)) })
	run("fig6", func() { fig6(*size) })
	run("grepvar", func() { grepvar(*size) })
	run("failtab", failtab)
	run("effective", effective)
	run("ablate", ablate)
	switch which {
	case "all", "tab1", "fig1a", "fig1b", "tab2", "fig4", "fig5", "fig6", "grepvar", "failtab", "effective", "ablate":
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", which)
		os.Exit(2)
	}
}

func perf(size float64, workers int, out string) {
	fmt.Printf("== Macro perf: host cost per job run (size %.2f, %d workers) ==\n", size, workers)
	rep := bench.RunPerf(size, workers)
	fmt.Println(bench.FormatTable(bench.PerfHeader, rep.Rows()))
	if out != "" {
		if err := os.WriteFile(out, rep.JSON(), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", out)
	} else {
		os.Stdout.Write(rep.JSON())
	}
}

func faults(out, statsOut string) {
	cfg := bench.DefaultFaults()
	if statsOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	fmt.Printf("== Fault injection: spill placement vs exchange drop rate (%d workers, %d files x %d chunks, seed %d) ==\n",
		cfg.Workers, cfg.Files, cfg.FileChunks, cfg.Seed)
	cells := bench.RunFaults(cfg)
	fmt.Println(bench.FormatTable(bench.FaultsHeader, bench.FaultsRows(cells)))
	if out != "" {
		if err := os.WriteFile(out, bench.FaultsJSON(cfg, cells), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", out)
	}
	dumpStats(cfg.Metrics, statsOut)
}

func readahead(out, statsOut string) {
	cfg := bench.DefaultReadAhead()
	if statsOut != "" {
		cfg.Metrics = obs.NewRegistry()
	}
	fmt.Printf("== Readahead window: depth x injected exchange delay (%d workers, %d-chunk file, seed %d) ==\n",
		cfg.Workers, cfg.FileChunks, cfg.Seed)
	cells := bench.RunReadAhead(cfg)
	fmt.Println(bench.FormatTable(bench.ReadAheadHeader, bench.ReadAheadRows(cells)))
	if out != "" {
		if err := os.WriteFile(out, bench.ReadAheadJSON(cfg, cells), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", out)
	}
	dumpStats(cfg.Metrics, statsOut)
}

func tier(out string) {
	fmt.Println("== Local transport tier ladder: steady-state 64KiB ReadInto ==")
	rungs, err := bench.RunTierLadder(2 * time.Second)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tier ladder: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(bench.FormatTable(bench.TierHeader, bench.TierRows(rungs)))
	if out != "" {
		if err := bench.PatchWireTierLadder(out, rungs); err != nil {
			fmt.Fprintf(os.Stderr, "patch %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("tier ladder patched into %s\n", out)
	}
}

func tracker(out string) {
	cfg := bench.DefaultTracker()
	fmt.Printf("== Tracker dissemination at scale: full poll vs delta (%d s, %d churn ops/s) ==\n",
		cfg.Seconds, cfg.ChurnPerSec)
	cells := bench.RunTracker(cfg)
	fmt.Println(bench.FormatTable(bench.TrackerHeader, bench.TrackerRows(cells)))
	if out != "" {
		if err := os.WriteFile(out, bench.TrackerJSON(cfg, cells), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", out)
	}
}

func combine(out string) {
	cfg := bench.DefaultCombine()
	fmt.Printf("== Combine scope: task vs node combining x skew (%d workers, %d records, vocab %d, zipf s=%.1f) ==\n",
		cfg.Workers, cfg.Records, cfg.Vocab, cfg.ZipfS)
	cells := bench.RunCombine(cfg)
	fmt.Println(bench.FormatTable(bench.CombineHeader, bench.CombineRows(cells)))
	if out != "" {
		if err := os.WriteFile(out, bench.CombineJSON(cfg, cells), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", out, err)
			os.Exit(1)
		}
		fmt.Printf("report written to %s\n", out)
	}
}

// dumpStats writes the sweep's aggregated registry snapshot as JSON.
func dumpStats(reg *obs.Registry, path string) {
	if reg == nil || path == "" {
		return
	}
	snap, err := obs.SnapshotJSON(reg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "snapshot: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("metrics snapshot written to %s\n", path)
}

func table1(spills int) {
	fmt.Printf("== Table 1: spilling cost of a 1 MB buffer (%d spills) ==\n", spills)
	fmt.Println("   paper: 1 / 7 / 9 / 25 / 174 / 499 ms")
	rows := bench.Table1(spills)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{r.Medium, fmt.Sprintf("%.1f", r.AvgMs)})
	}
	fmt.Println(bench.FormatTable([]string{"spill medium", "time (ms)"}, out))
}

func fig1a() {
	fmt.Println("== Figure 1(a): CDF of reduce-task input sizes ==")
	res := bench.Fig1(nil)
	var out [][]string
	for i := range res.AllTasks {
		out = append(out, []string{
			fmt.Sprintf("%.4f", res.AllTasks[i].Fraction),
			bench.HumanBytes(res.AllTasks[i].Value),
			bench.HumanBytes(res.JobAverages[i].Value),
		})
	}
	fmt.Println(bench.FormatTable([]string{"fraction", "all tasks", "per-job avg"}, out))
	fmt.Println(bench.ASCIICDF("all reduce-task inputs", res.AllTasks, 60))
	fmt.Println(bench.ASCIICDF("per-job average inputs", res.JobAverages, 60))
}

func fig1b() {
	fmt.Println("== Figure 1(b): CDF of per-job skewness of reduce input sizes ==")
	res := bench.Fig1(nil)
	var out [][]string
	for _, p := range res.Skewness {
		out = append(out, []string{fmt.Sprintf("%.4f", p.Fraction), fmt.Sprintf("%.2f", p.Value)})
	}
	fmt.Println(bench.FormatTable([]string{"fraction", "skewness"}, out))
	fmt.Printf("fraction of jobs with |skewness| > 1: %.0f%%\n\n", res.HighlySkewedFraction*100)
}

func table2(size float64) {
	fmt.Printf("== Table 2: straggling reduce statistics (size factor %.2f) ==\n", size)
	fmt.Println("   paper: median 10/10.3GB/10527; anchortext 2.5/7.2GB/7383; spam 3/10.2GB/10478")
	rows := bench.Table2(size)
	var out [][]string
	for _, r := range rows {
		out = append(out, []string{
			r.Kind.String(),
			fmt.Sprintf("%.2f GB", r.InputGB),
			fmt.Sprintf("%.2f GB", r.SpilledGB),
			strconv.FormatInt(r.SpilledChunks, 10),
			fmt.Sprintf("%.2f%%", r.Fragmentation*100),
		})
	}
	fmt.Println(bench.FormatTable(
		[]string{"job", "input bytes", "spilled bytes", "spilled chunks", "fragmentation"}, out))
}

func figMacro(title string, cells []bench.MacroCell) {
	fmt.Printf("== %s: job runtimes ==\n", title)
	var out [][]string
	for _, c := range cells {
		out = append(out, []string{c.Label, fmt.Sprintf("%.0f s", c.Seconds)})
	}
	fmt.Println(bench.FormatTable([]string{"configuration", "runtime"}, out))
}

func fig6(size float64) {
	fmt.Println("== Figure 6: memory configurations (no contention) ==")
	cells := bench.Fig6(size)
	var out [][]string
	for _, c := range cells {
		spilled := float64(c.Result.StragglerSpilled) / float64(media.GB)
		out = append(out, []string{
			c.Kind.String(), c.Config,
			fmt.Sprintf("%.0f s", c.Seconds),
			fmt.Sprintf("%.2f GB", spilled),
		})
	}
	fmt.Println(bench.FormatTable([]string{"job", "config", "runtime", "straggler spilled"}, out))
}

func grepvar(size float64) {
	fmt.Println("== §4.2.3: effect of disk spilling on background grep tasks ==")
	fmt.Println("   paper: most ~16 s, unlucky ones up to ~39 s under disk spilling")
	res := bench.GrepVariance(size)
	dm, dx := bench.MedianMax(res.DiskSecs)
	sm, sx := bench.MedianMax(res.SpongeSecs)
	out := [][]string{
		{"disk spilling", fmt.Sprintf("%d", len(res.DiskSecs)), fmt.Sprintf("%.1f s", dm), fmt.Sprintf("%.1f s", dx)},
		{"sponge spilling", fmt.Sprintf("%d", len(res.SpongeSecs)), fmt.Sprintf("%.1f s", sm), fmt.Sprintf("%.1f s", sx)},
	}
	fmt.Println(bench.FormatTable([]string{"foreground spill mode", "grep tasks", "median", "max"}, out))
}

func ablate() {
	fmt.Println("== Ablation: in-memory chunk size (§3.2 picks 1 MB) ==")
	var out [][]string
	for _, r := range bench.ChunkSizeAblation(nil, 100) {
		out = append(out, []string{
			bench.HumanBytes(float64(r.ChunkVirtual)),
			fmt.Sprintf("%.1f ms/MB", r.RemoteSpillMs),
			fmt.Sprintf("%.2f%%", r.Fragmentation*100),
		})
	}
	fmt.Println(bench.FormatTable([]string{"chunk size", "remote spill cost", "fragmentation (10.25MB spill)"}, out))

	fmt.Println("== Ablation: tracker poll interval (§3.1.1 picks 1 s) ==")
	out = nil
	for _, r := range bench.StalenessAblation(nil) {
		out = append(out, []string{
			r.PollInterval.String(),
			fmt.Sprintf("%d", r.RemoteFailures),
			fmt.Sprintf("%d", r.DiskChunks),
		})
	}
	fmt.Println(bench.FormatTable([]string{"poll interval", "stale-entry failures", "disk-fallback chunks"}, out))

	fmt.Println("== Ablation: server affinity (failure surface, §4.3) ==")
	out = nil
	for _, r := range bench.AffinityAblation() {
		out = append(out, []string{
			fmt.Sprintf("%v", r.Affinity),
			fmt.Sprintf("%d", r.MachinesUsed),
			fmt.Sprintf("%.6f%%", r.FailureProb*100),
		})
	}
	fmt.Println(bench.FormatTable([]string{"affinity", "machines holding data", "P(task failure)"}, out))

	fmt.Println("== Ablation: rack-local spilling vs oversubscribed uplinks (§3.1.1) ==")
	out = nil
	for _, r := range bench.RackLocalityAblation() {
		out = append(out, []string{
			fmt.Sprintf("%v", r.RackLocalOnly),
			fmt.Sprintf("%.0f ms", r.SpillMs),
			fmt.Sprintf("%d", r.DiskChunks),
			bench.HumanBytes(float64(r.CrossRackBytes)),
		})
	}
	fmt.Println(bench.FormatTable([]string{"rack-local only", "32MB spill", "disk-fallback chunks", "uplink bytes"}, out))

	fmt.Println("== Ablation: async writes + prefetch (§3.1.2) ==")
	out = nil
	for _, r := range bench.OverlapAblation() {
		out = append(out, []string{
			fmt.Sprintf("%v", r.Prefetch),
			fmt.Sprintf("%d", r.AsyncDepth),
			fmt.Sprintf("%.1f ms", r.WriteMs),
			fmt.Sprintf("%.1f ms", r.ReadMs),
		})
	}
	fmt.Println(bench.FormatTable([]string{"overlap on", "async depth", "32-chunk write", "32-chunk read"}, out))
}

func effective() {
	fmt.Println("== §4.3 Effectiveness: aggregate intermediate data vs cluster memory ==")
	fmt.Println("   paper: at most ~25% of total cluster memory at any point in time")
	res := bench.Effectiveness(bench.DefaultEffectiveness())
	out := [][]string{
		{"cluster memory", bench.HumanBytes(res.ClusterMemory)},
		{"median fraction", fmt.Sprintf("%.2f%%", res.MedianFraction*100)},
		{"p99 fraction", fmt.Sprintf("%.2f%%", res.P99Fraction*100)},
		{"peak fraction", fmt.Sprintf("%.2f%%", res.PeakFraction*100)},
	}
	fmt.Println(bench.FormatTable([]string{"metric", "value"}, out))
}

func failtab() {
	fmt.Println("== §4.3: task failure probability, MTTF 100 months, t = 120 min ==")
	var out [][]string
	for _, r := range bench.FailureTable() {
		out = append(out, []string{strconv.Itoa(r.Machines), fmt.Sprintf("%.6f%%", r.Probability*100)})
	}
	fmt.Println(bench.FormatTable([]string{"machines holding data", "P(task failure)"}, out))
}
