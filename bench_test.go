// Package spongefiles_test holds one testing.B benchmark per table and
// figure of the paper's evaluation (§4). Each benchmark runs its
// experiment harness and reports the headline quantities as custom
// metrics, so `go test -bench=. -benchmem` regenerates every result in
// one sweep. Benchmarks default to reduced dataset sizes to stay fast;
// cmd/benchtab reruns them at the paper's full scale (-size 1.0), and
// EXPERIMENTS.md records the full-scale paper-versus-measured numbers.
package spongefiles_test

import (
	"fmt"
	"testing"

	"spongefiles/internal/bench"
	"spongefiles/internal/media"
	"spongefiles/internal/workload"
)

// benchSize keeps the macro benchmarks tractable under `go test -bench`.
const benchSize = 0.1

// BenchmarkTable1 regenerates the §4.1 microbenchmark: average time to
// spill a 1 MB buffer to each of the six media. Paper row:
// 1 / 7 / 9 / 25 / 174 / 499 ms.
func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.Table1(200)
		for _, r := range rows {
			b.ReportMetric(r.AvgMs, shortMedium(r.Medium)+"_ms")
		}
	}
}

func shortMedium(m string) string {
	switch m {
	case "local shared memory":
		return "shm"
	case "local memory (local sponge server)":
		return "ipc"
	case "remote memory, over the network":
		return "remote"
	case "disk":
		return "disk"
	case "disk with background IO":
		return "disk_bgio"
	default:
		return "disk_bgio_pressure"
	}
}

// BenchmarkFigure1a regenerates the reduce-input-size CDFs of Fig. 1(a).
func BenchmarkFigure1a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Fig1(nil)
		med := res.AllTasks[4].Value
		max := res.AllTasks[len(res.AllTasks)-1].Value
		b.ReportMetric(med/float64(media.MB), "median_MB")
		b.ReportMetric(max/float64(media.GB), "max_GB")
	}
}

// BenchmarkFigure1b regenerates the per-job skewness CDF of Fig. 1(b).
func BenchmarkFigure1b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.Fig1(nil)
		b.ReportMetric(res.HighlySkewedFraction*100, "pct_highly_skewed")
	}
}

// BenchmarkFigure4 regenerates the isolation macrobenchmark: the three
// jobs, disk versus SpongeFiles, 4 GB versus 16 GB nodes.
func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cell := range bench.Fig4(benchSize) {
			b.ReportMetric(cell.Seconds, cell.Label+"_s")
		}
	}
}

// BenchmarkFigure5 regenerates the disk-contention macrobenchmark (the
// background 1 TB grep job occupying spare slots).
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, cell := range bench.Fig5(benchSize) {
			b.ReportMetric(cell.Seconds, cell.Label+"_s")
		}
	}
}

// BenchmarkFigure6 regenerates the memory-configuration comparison:
// cached disk, 12 GB local-only sponge, no spilling, and 1 GB/node
// SpongeFiles.
func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for ci, cell := range bench.Fig6(benchSize) {
			b.ReportMetric(cell.Seconds, fmt.Sprintf("%s_cfg%d_s", cell.Kind, ci%4))
		}
	}
}

// BenchmarkTable2 regenerates the straggler statistics: input bytes,
// spilled bytes, spilled chunks, and the derived fragmentation (< 1% in
// the paper).
func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, r := range bench.Table2(benchSize) {
			b.ReportMetric(r.InputGB, r.Kind.String()+"_inGB")
			b.ReportMetric(r.SpilledGB, r.Kind.String()+"_spillGB")
			b.ReportMetric(float64(r.SpilledChunks), r.Kind.String()+"_chunks")
			b.ReportMetric(r.Fragmentation*100, r.Kind.String()+"_frag_pct")
		}
	}
}

// BenchmarkGrepVariance regenerates the §4.2.3 interference analysis:
// background grep task runtimes under disk versus sponge spilling.
func BenchmarkGrepVariance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := bench.GrepVariance(benchSize)
		dMed, dMax := bench.MedianMax(res.DiskSecs)
		sMed, sMax := bench.MedianMax(res.SpongeSecs)
		b.ReportMetric(dMed, "disk_median_s")
		b.ReportMetric(dMax, "disk_max_s")
		b.ReportMetric(sMed, "sponge_median_s")
		b.ReportMetric(sMax, "sponge_max_s")
	}
}

// BenchmarkFailureAnalysis regenerates §4.3's Poisson failure table.
func BenchmarkFailureAnalysis(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := bench.FailureTable()
		b.ReportMetric(rows[0].Probability*1e6, "P1_ppm")
		b.ReportMetric(rows[len(rows)-1].Probability*1e6, "P40_ppm")
	}
}

// BenchmarkSkewnessEstimator measures the Figure 1(b) statistic itself.
func BenchmarkSkewnessEstimator(b *testing.B) {
	pop := workload.DefaultJobPopulation()
	pop.Jobs = 100
	jobs := pop.Generate()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, j := range jobs {
			workload.Skewness(j.TaskInputs)
		}
	}
}
