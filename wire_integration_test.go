package spongefiles_test

// Integration of the simulated sponge service with the real TCP wire
// transport: the allocator chain, tracker polling, and chunk reads all
// cross live sockets against wire servers, including the failure path
// where a server dies and its chunks surface ErrChunkLost after the
// retry budget.

import (
	"bytes"
	"errors"
	"testing"

	"spongefiles/internal/cluster"
	"spongefiles/internal/media"
	"spongefiles/internal/simtime"
	"spongefiles/internal/sponge"
	"spongefiles/internal/sponge/wire"
)

// wireStack is a 4-node simulated service whose nodes 1..3 are backed
// by real TCP sponge servers; node 0 (the task's node) stays on the
// simulated fallback with a deliberately tiny local pool.
type wireStack struct {
	sim     *simtime.Sim
	c       *cluster.Cluster
	svc     *sponge.Service
	pools   map[int]*sponge.Pool
	servers map[int]*wire.Server
	tr      *wire.Transport
}

func newWireStack(t *testing.T, chunksPerServer int) *wireStack {
	t.Helper()
	cfg := cluster.PaperConfig()
	cfg.Workers = 4
	cfg.SpongeMemory = 2 * media.MB // two local chunks, the rest spills remote
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	scfg := sponge.DefaultConfig()
	scfg.LocalDiskEnabled = false // force the remote-memory path to carry the load
	svc := sponge.Start(c, scfg)

	s := &wireStack{
		sim: sim, c: c, svc: svc,
		pools:   make(map[int]*sponge.Pool),
		servers: make(map[int]*wire.Server),
	}
	addrs := make(map[int]string)
	for n := 1; n <= 3; n++ {
		pool := sponge.NewPool(svc.ChunkReal(), chunksPerServer)
		srv, err := wire.Serve(pool, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		s.pools[n] = pool
		s.servers[n] = srv
		addrs[n] = srv.Addr()
	}
	s.tr = wire.NewTransport(addrs, svc.Transport())
	t.Cleanup(func() { s.tr.Close() })
	svc.SetTransport(s.tr)
	return s
}

// TestWireTransportRoundTrip drives a SpongeFile create → write → read
// → delete through three real TCP sponge servers and verifies the data
// and the pools' bookkeeping end to end.
func TestWireTransportRoundTrip(t *testing.T) {
	s := newWireStack(t, 8)
	chunk := s.svc.ChunkReal()
	data := make([]byte, 18*chunk+chunk/2)
	for i := range data {
		data[i] = byte(i*13 + 5)
	}

	s.sim.Spawn("task", func(p *simtime.Proc) {
		agent := s.svc.NewAgent(s.c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "tcp-spill")
		if err := f.Write(p, data); err != nil {
			t.Errorf("write over wire: %v", err)
			return
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
			return
		}
		st := f.Stats()
		if st.ByKind[sponge.RemoteMem] == 0 {
			t.Errorf("no chunks went remote: stats %+v", st)
		}
		got := make([]byte, 0, len(data))
		buf := make([]byte, chunk)
		for {
			n, err := f.Read(p, buf)
			if err != nil {
				t.Errorf("read over wire: %v", err)
				return
			}
			if n == 0 {
				break
			}
			got = append(got, buf[:n]...)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("round trip corrupt: %d bytes back, want %d", len(got), len(data))
		}
		f.Delete(p)
	})
	s.sim.MustRun()

	// After Delete every pool is whole again: the frees crossed the
	// sockets too.
	for n := 1; n <= 3; n++ {
		if s.pools[n].Free() != s.pools[n].Chunks() {
			t.Errorf("node %d pool not drained after delete: %d/%d free",
				n, s.pools[n].Free(), s.pools[n].Chunks())
		}
	}
	// And every chunk buffer the windowed read checked out over the wire
	// came back to the service pool.
	if out := s.svc.BufPoolStats().Outstanding(); out != 0 {
		t.Errorf("chunk buffers leaked across the wire path: outstanding = %d", out)
	}
}

// TestWireTransportServerFailure kills one TCP server mid-read: its
// chunks must surface ErrChunkLost only after the retry budget is
// spent, while the tracker's next poll writes the dead server off.
func TestWireTransportServerFailure(t *testing.T) {
	s := newWireStack(t, 8)
	chunk := s.svc.ChunkReal()
	data := make([]byte, 18*chunk)
	for i := range data {
		data[i] = byte(i*7 + 3)
	}

	s.sim.Spawn("task", func(p *simtime.Proc) {
		agent := s.svc.NewAgent(s.c.Nodes[0])
		defer agent.Close()
		f := agent.Create(p, "doomed")
		if err := f.Write(p, data); err != nil {
			t.Errorf("write over wire: %v", err)
			return
		}
		if err := f.Close(p); err != nil {
			t.Errorf("close: %v", err)
			return
		}

		// Kill a server that actually holds chunks.
		victim := 0
		for n := 1; n <= 3; n++ {
			if s.pools[n].Free() < s.pools[n].Chunks() {
				victim = n
			}
		}
		if victim == 0 {
			t.Error("no server holds chunks; nothing to kill")
			return
		}
		s.servers[victim].Close()

		retriesBefore := f.Stats().Retries
		buf := make([]byte, chunk)
		var err error
		for {
			var n int
			n, err = f.Read(p, buf)
			if err != nil || n == 0 {
				break
			}
		}
		if !errors.Is(err, sponge.ErrChunkLost) {
			t.Errorf("read after server death = %v, want ErrChunkLost", err)
		}
		if f.Stats().Retries <= retriesBefore {
			t.Errorf("chunk declared lost without spending the retry budget (retries %d -> %d)",
				retriesBefore, f.Stats().Retries)
		}

		// The tracker's next poll sees the dead server as unreachable and
		// records zero free space for it.
		p.Sleep(2 * s.svc.Config.PollInterval)
		if s.svc.Tracker.PollDrops() == 0 {
			t.Error("tracker never recorded the dead server's poll as dropped")
		}
		// Delete with the dead server still down: its frees are lost (the
		// GC would reclaim them in a full deployment), but every locally
		// checked-out chunk buffer must still return to the pool.
		f.Delete(p)
	})
	s.sim.MustRun()
	if out := s.svc.BufPoolStats().Outstanding(); out != 0 {
		t.Errorf("chunk buffers leaked on the failure path: outstanding = %d", out)
	}
}

// TestWireTransportLivenessAndGC registers tasks through a shared
// liveness registry (NodeLiveness over the simulated server) and checks
// that a TCP Ping agrees with the in-process view — the registry that
// the garbage collector consults when deciding whether chunks are
// orphaned.
func TestWireTransportLivenessAndGC(t *testing.T) {
	cfg := cluster.PaperConfig()
	cfg.Workers = 2
	cfg.SpongeMemory = 8 * media.MB
	sim := simtime.New()
	c := cluster.New(sim, cfg)
	svc := sponge.Start(c, sponge.DefaultConfig())

	// The TCP server on node 1 shares node 1's in-process registry.
	pool := sponge.NewPool(svc.ChunkReal(), 8)
	srv, err := wire.ServeOptions(pool, "127.0.0.1:0", wire.Options{
		Liveness: wire.NodeLiveness{Srv: svc.Servers[1]},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := wire.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	agent := svc.NewAgent(c.Nodes[1])
	pid := uint64(agent.Task().PID)
	if alive, err := cl.Ping(pid); err != nil || !alive {
		t.Fatalf("TCP ping for registered task = (%v, %v), want alive", alive, err)
	}
	agent.Close()
	if alive, err := cl.Ping(pid); err != nil || alive {
		t.Fatalf("TCP ping after agent close = (%v, %v), want dead", alive, err)
	}
	// And the other direction: registration over TCP is visible to the
	// simulated server the GC sweep asks.
	if err := cl.Register(777); err != nil {
		t.Fatal(err)
	}
	if !svc.Servers[1].TaskAlive(777) {
		t.Fatal("TCP-registered pid invisible to the in-process registry")
	}
}
